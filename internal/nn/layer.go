// Package nn is a real, from-scratch trainable neural-network stack:
// layers with forward and backward passes over internal/tensor, SGD and
// Adam optimizers, soft-label cross-entropy, and the two-phase
// fine-tuning protocol of Sec. III-B3 (frozen features at lr 1e-3, then
// full fine-tuning at 1e-4).
//
// It exists to demonstrate the paper's mechanics for real at miniature
// scale — pretraining, transfer, layer removal, retraining, and
// angular-distance evaluation on the synthetic HANDS task — while
// internal/transfer supplies the calibrated paper-scale behaviour.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"netcut/internal/tensor"
)

// Param is one learnable parameter vector with its gradient.
type Param struct {
	Name string
	Val  []float64
	Grad []float64
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Val: make([]float64, n), Grad: make([]float64, n)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is a differentiable network layer. Forward caches whatever
// Backward needs; Backward returns the gradient w.r.t. the layer input
// and accumulates parameter gradients.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Conv is a 2-D convolution with bias.
type Conv struct {
	W      *Param // [KH,KW,InC,OutC]
	B      *Param
	KH, KW int
	InC    int
	OutC   int
	Stride int
	Same   bool

	x *tensor.Tensor
}

// NewConv builds a conv layer with He-initialized weights.
func NewConv(rng *rand.Rand, k, inC, outC, stride int, same bool) *Conv {
	c := &Conv{
		W: newParam("conv.w", k*k*inC*outC), B: newParam("conv.b", outC),
		KH: k, KW: k, InC: inC, OutC: outC, Stride: stride, Same: same,
	}
	std := math.Sqrt(2.0 / float64(k*k*inC))
	for i := range c.W.Val {
		c.W.Val[i] = rng.NormFloat64() * std
	}
	return c
}

func (c *Conv) weights() *tensor.Tensor {
	return &tensor.Tensor{N: c.KH, H: c.KW, W: c.InC, C: c.OutC, Data: c.W.Val}
}

// Forward implements Layer.
func (c *Conv) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	c.x = x
	return tensor.Conv2D(x, c.weights(), c.B.Val, c.Stride, c.Same)
}

// Backward implements Layer.
func (c *Conv) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gw, gb := tensor.Conv2DBackward(c.x, c.weights(), grad, true, c.Stride, c.Same)
	accumulate(c.W.Grad, gw.Data)
	accumulate(c.B.Grad, gb)
	return gx
}

// Params implements Layer.
func (c *Conv) Params() []*Param { return []*Param{c.W, c.B} }

// DWConv is a depthwise convolution with bias.
type DWConv struct {
	W      *Param // [K,K,C,1]
	B      *Param
	K      int
	C      int
	Stride int
	Same   bool

	x *tensor.Tensor
}

// NewDWConv builds a depthwise conv layer.
func NewDWConv(rng *rand.Rand, k, ch, stride int, same bool) *DWConv {
	d := &DWConv{
		W: newParam("dwconv.w", k*k*ch), B: newParam("dwconv.b", ch),
		K: k, C: ch, Stride: stride, Same: same,
	}
	std := math.Sqrt(2.0 / float64(k*k))
	for i := range d.W.Val {
		d.W.Val[i] = rng.NormFloat64() * std
	}
	return d
}

func (d *DWConv) weights() *tensor.Tensor {
	return &tensor.Tensor{N: d.K, H: d.K, W: d.C, C: 1, Data: d.W.Val}
}

// Forward implements Layer.
func (d *DWConv) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.x = x
	return tensor.DWConv2D(x, d.weights(), d.B.Val, d.Stride, d.Same)
}

// Backward implements Layer.
func (d *DWConv) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gw, gb := tensor.DWConv2DBackward(d.x, d.weights(), grad, true, d.Stride, d.Same)
	accumulate(d.W.Grad, gw.Data)
	accumulate(d.B.Grad, gb)
	return gx
}

// Params implements Layer.
func (d *DWConv) Params() []*Param { return []*Param{d.W, d.B} }

// Dense is a fully connected layer over flattened (1x1 spatial) inputs.
type Dense struct {
	W    *Param // [1,1,InC,OutC]
	B    *Param
	InC  int
	OutC int

	x *tensor.Tensor
}

// NewDense builds a dense layer with He initialization.
func NewDense(rng *rand.Rand, inC, outC int) *Dense {
	d := &Dense{W: newParam("dense.w", inC*outC), B: newParam("dense.b", outC), InC: inC, OutC: outC}
	std := math.Sqrt(2.0 / float64(inC))
	for i := range d.W.Val {
		d.W.Val[i] = rng.NormFloat64() * std
	}
	return d
}

func (d *Dense) weights() *tensor.Tensor {
	return &tensor.Tensor{N: 1, H: 1, W: d.InC, C: d.OutC, Data: d.W.Val}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.x = x
	return tensor.Dense(x, d.weights(), d.B.Val)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gw, gb := tensor.DenseBackward(d.x, d.weights(), grad, true)
	accumulate(d.W.Grad, gw.Data)
	accumulate(d.B.Grad, gb)
	return gx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectifier activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Clone()
	for i := range g.Data {
		if !r.mask[i] {
			g.Data[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// MaxPool is k x k max pooling.
type MaxPool struct {
	K      int
	Stride int
	Same   bool

	x   *tensor.Tensor
	arg []int
}

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m.x = x
	y, arg := tensor.MaxPool(x, m.K, m.Stride, m.Same)
	m.arg = arg
	return y
}

// Backward implements Layer.
func (m *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPoolBackward(m.x, grad, m.arg)
}

// Params implements Layer.
func (m *MaxPool) Params() []*Param { return nil }

// GlobalAvgPool reduces spatial dimensions to 1x1.
type GlobalAvgPool struct {
	x *tensor.Tensor
}

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g.x = x
	return tensor.GlobalAvgPool(x)
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.GlobalAvgPoolBackward(g.x, grad)
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Residual wraps a body with an identity skip connection: y = body(x)+x.
// The body must preserve shape.
type Residual struct {
	Body Layer
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	if !y.ShapeEq(x) {
		panic(fmt.Sprintf("nn: residual body changed shape %s -> %s", x.ShapeString(), y.ShapeString()))
	}
	out := y.Clone()
	for i := range out.Data {
		out.Data[i] += x.Data[i]
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gBody := r.Body.Backward(grad)
	out := gBody.Clone()
	for i := range out.Data {
		out.Data[i] += grad.Data[i]
	}
	return out
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }

func accumulate(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}
