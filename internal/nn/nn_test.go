package nn

import (
	"math"
	"math/rand"
	"testing"

	"netcut/internal/hands"
	"netcut/internal/tensor"
)

func TestSoftmaxKnownValues(t *testing.T) {
	x := tensor.New(1, 1, 1, 3)
	copy(x.Data, []float64{1, 1, 1})
	p := Softmax(x)
	for _, v := range p.Data {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p.Data)
		}
	}
	x2 := tensor.New(1, 1, 1, 2)
	copy(x2.Data, []float64{1000, 0}) // overflow-safe
	p2 := Softmax(x2)
	if p2.Data[0] < 0.999 || math.IsNaN(p2.Data[0]) {
		t.Fatalf("softmax overflow handling broken: %v", p2.Data)
	}
}

func TestSoftCrossEntropyGradientRowsSumToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(4, 1, 1, 5)
	for i := range logits.Data {
		logits.Data[i] = rng.NormFloat64()
	}
	targets := make([][]float64, 4)
	for i := range targets {
		targets[i] = []float64{0.5, 0.2, 0.1, 0.1, 0.1}
	}
	loss, grad := SoftCrossEntropy(logits, targets)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	for n := 0; n < 4; n++ {
		var s float64
		for c := 0; c < 5; c++ {
			s += grad.Data[n*5+c]
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d gradient sums to %v, want 0", n, s)
		}
	}
}

func TestSoftCrossEntropyNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(2, 1, 1, 4)
	for i := range logits.Data {
		logits.Data[i] = rng.NormFloat64()
	}
	targets := [][]float64{{0.7, 0.1, 0.1, 0.1}, {0.25, 0.25, 0.25, 0.25}}
	_, grad := SoftCrossEntropy(logits, targets)
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftCrossEntropy(logits, targets)
		logits.Data[i] = orig - eps
		lm, _ := SoftCrossEntropy(logits, targets)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("logit grad %d: analytic %v vs numeric %v", i, grad.Data[i], num)
		}
	}
}

// TestModelGradientCheck verifies end-to-end backprop through a model
// containing conv, BN, ReLU, pooling, residual and dense layers by
// spot-checking parameter gradients against finite differences.
func TestModelGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := Build(MiniConfig{InputH: 8, StemC: 4, Width: 6, Blocks: 1, Classes: 3, HeadHidden: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 8, 8, 1)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	targets := [][]float64{{0.6, 0.3, 0.1}, {0.1, 0.2, 0.7}}

	lossAt := func() float64 {
		logits := m.Forward(x, true)
		l, _ := SoftCrossEntropy(logits, targets)
		return l
	}
	logits := m.Forward(x, true)
	_, grad := SoftCrossEntropy(logits, targets)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(grad)

	const eps = 1e-5
	checked := 0
	for _, p := range m.Params() {
		// Spot-check a few entries of every parameter tensor.
		for _, i := range []int{0, len(p.Val) / 2, len(p.Val) - 1} {
			orig := p.Val[i]
			p.Val[i] = orig + eps
			lp := lossAt()
			p.Val[i] = orig - eps
			lm := lossAt()
			p.Val[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad[i], num)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(8, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = 3 + 2*rng.NormFloat64()
	}
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	y := bn.Forward(x, false)
	// After training on the same batch repeatedly, inference output
	// should be near-normalized.
	var mean float64
	for _, v := range y.Data {
		mean += v
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean) > 0.2 {
		t.Fatalf("inference mean %v, want ~0", mean)
	}
}

func TestTrainingLearnsGraspTask(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := hands.Generate(hands.Config{N: 100, Size: 12, Seed: 1})
	m, err := Build(MiniConfig{InputH: 12, StemC: 6, Width: 8, Blocks: 1, Classes: 5, HeadHidden: 16, Kind: PlainBlocks}, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := Evaluate(m, ds)
	losses, err := Train(m, ds, TrainConfig{Epochs: 24, BatchSize: 16, Optimizer: NewAdam(3e-3), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
	after := Evaluate(m, ds)
	if after <= before+0.1 {
		t.Fatalf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
	if after < 0.85 {
		t.Fatalf("trained accuracy %.3f too low", after)
	}
}

func TestHeadOnlyTrainingFreezesFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := hands.Generate(hands.Config{N: 40, Size: 12, Seed: 2})
	m, err := Build(MiniConfig{InputH: 12, Blocks: 1, Classes: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	featBefore := snapshot(m.FeatureParams())
	headBefore := snapshot(m.HeadParams())
	if _, err := Train(m, ds, TrainConfig{Epochs: 2, BatchSize: 8, Optimizer: NewAdam(1e-3), HeadOnly: true, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if !equalSnapshot(featBefore, snapshot(m.FeatureParams())) {
		t.Fatal("head-only training mutated feature weights")
	}
	if equalSnapshot(headBefore, snapshot(m.HeadParams())) {
		t.Fatal("head-only training did not update the head")
	}
}

func TestFineTuneProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := hands.Generate(hands.Config{N: 60, Size: 12, Seed: 3})
	m, err := Build(MiniConfig{InputH: 12, Blocks: 1, Classes: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := FineTune(m, ds, 2, 2, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 4 {
		t.Fatalf("%d epoch losses, want 4", len(losses))
	}
}

func TestCutModelTransfersPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := MiniConfig{InputH: 12, StemC: 4, Width: 6, Blocks: 3, Classes: 8, HeadHidden: 12}
	src, err := Build(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	trn, err := CutModel(src, cfg, 1, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trn.Blocks) != 2 {
		t.Fatalf("TRN has %d blocks, want 2", len(trn.Blocks))
	}
	// Transferred prefix weights are identical.
	sp, dp := src.FeatureParams(), trn.FeatureParams()
	for i := range dp {
		for j := range dp[i].Val {
			if dp[i].Val[j] != sp[i].Val[j] {
				t.Fatalf("feature param %d diverges at %d", i, j)
			}
		}
	}
	// Head output matches the new task.
	x := tensor.New(1, 12, 12, 1)
	if out := trn.Forward(x, false); out.C != 5 {
		t.Fatalf("TRN outputs %d classes, want 5", out.C)
	}
	// Mutating the TRN must not touch the source (independent copies).
	dp[0].Val[0] += 42
	if sp[0].Val[0] == dp[0].Val[0] {
		t.Fatal("TRN aliases source weights")
	}
	if _, err := CutModel(src, cfg, 99, 5, rng); err == nil {
		t.Fatal("over-deep cut accepted")
	}
}

func TestTrainConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := hands.Generate(hands.Config{N: 10, Size: 12, Seed: 4})
	m, _ := Build(MiniConfig{InputH: 12, Blocks: 1}, rng)
	if _, err := Train(m, ds, TrainConfig{Epochs: 0, BatchSize: 4, Optimizer: NewAdam(1e-3)}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := Train(m, ds, TrainConfig{Epochs: 1, BatchSize: 4}); err == nil {
		t.Fatal("nil optimizer accepted")
	}
	if _, err := Train(m, &hands.Dataset{}, TrainConfig{Epochs: 1, BatchSize: 4, Optimizer: NewAdam(1e-3)}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestOptimizersMinimizeQuadratic(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd":  func() Optimizer { return NewSGD(0.1, 0.9) },
		"adam": func() Optimizer { return NewAdam(0.1) },
	} {
		p := newParam("w", 2)
		p.Val[0], p.Val[1] = 3, -4
		opt := mk()
		for i := 0; i < 200; i++ {
			// f = 0.5*(w0^2 + w1^2); grad = w.
			p.Grad[0], p.Grad[1] = p.Val[0], p.Val[1]
			opt.Step([]*Param{p})
		}
		if math.Abs(p.Val[0]) > 1e-2 || math.Abs(p.Val[1]) > 1e-2 {
			t.Fatalf("%s did not converge: %v", name, p.Val)
		}
	}
}

func TestMobileAndPlainBlocksTrainable(t *testing.T) {
	for _, kind := range []BlockKind{PlainBlocks, MobileBlocks, ResidualBlocks} {
		rng := rand.New(rand.NewSource(10))
		m, err := Build(MiniConfig{InputH: 12, Blocks: 2, Classes: 5, Kind: kind}, rng)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		ds := hands.Generate(hands.Config{N: 20, Size: 12, Seed: 5})
		if _, err := Train(m, ds, TrainConfig{Epochs: 1, BatchSize: 10, Optimizer: NewAdam(1e-3), Seed: 6}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func snapshot(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Val...)
	}
	return out
}

func equalSnapshot(a, b [][]float64) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
