package nn

import (
	"fmt"

	"netcut/internal/graph"
)

// ToGraph converts a miniature model into the analytical layer-graph IR
// so real trained networks can be timed on the simulated device,
// profiled, and explored by NetCut exactly like the paper-scale zoo.
// Model blocks become removable IR blocks; the head is marked as
// classification layers.
func ToGraph(m *Model, name string, inputH, inputW, inputC, classes int) (*graph.Graph, error) {
	b := graph.NewBuilder(name, graph.Shape{H: inputH, W: inputW, C: inputC}, classes)
	x := b.Input()
	x, err := emitLayer(b, m.Stem, x)
	if err != nil {
		return nil, err
	}
	for i, blk := range m.Blocks {
		b.BeginBlock(fmt.Sprintf("block%d", i+1))
		x, err = emitLayer(b, blk, x)
		if err != nil {
			return nil, err
		}
		b.EndBlock()
	}
	b.BeginHead()
	x, err = emitLayer(b, m.Head, x)
	if err != nil {
		return nil, err
	}
	b.Softmax(x)
	return b.Finish()
}

// emitLayer lowers one nn layer (possibly a container) to IR nodes and
// returns the output node ID.
func emitLayer(b *graph.Builder, l Layer, x int) (int, error) {
	switch v := l.(type) {
	case *Sequential:
		var err error
		for _, c := range v.Layers {
			x, err = emitLayer(b, c, x)
			if err != nil {
				return 0, err
			}
		}
		return x, nil
	case *Residual:
		y, err := emitLayer(b, v.Body, x)
		if err != nil {
			return 0, err
		}
		return b.Add(y, x), nil
	case *Conv:
		return b.Conv(x, v.KH, v.OutC, v.Stride, padMode(v.Same)), nil
	case *DWConv:
		return b.DWConv(x, v.K, v.Stride, padMode(v.Same)), nil
	case *Dense:
		return b.Dense(x, v.OutC), nil
	case *BatchNorm:
		return b.BN(x), nil
	case *ReLU:
		return b.ReLU(x), nil
	case *MaxPool:
		return b.MaxPool(x, v.K, v.Stride, padMode(v.Same)), nil
	case *GlobalAvgPool:
		return b.GlobalAvgPool(x), nil
	default:
		// Parameter-free inference decorations (e.g. quant observers)
		// have no timing-relevant IR representation of their own.
		if len(l.Params()) == 0 {
			return x, nil
		}
		return 0, fmt.Errorf("nn: cannot lower layer %T to graph IR", l)
	}
}

func padMode(same bool) graph.PadMode {
	if same {
		return graph.Same
	}
	return graph.Valid
}
