package nn

import (
	"fmt"
	"math/rand"
)

// BlockKind selects the removable-block flavour of a miniature network,
// mirroring the architecture families of the zoo.
type BlockKind string

const (
	// PlainBlocks are Conv/BN/ReLU stacks (VGG-like).
	PlainBlocks BlockKind = "plain"
	// ResidualBlocks are identity-skip Conv/BN/ReLU/Conv/BN blocks
	// (ResNet-like).
	ResidualBlocks BlockKind = "residual"
	// MobileBlocks are DWConv/BN/ReLU + 1x1 Conv/BN/ReLU separable
	// blocks (MobileNet-like).
	MobileBlocks BlockKind = "mobile"
)

// MiniConfig describes a miniature network.
type MiniConfig struct {
	InputH, InputW, InputC int
	StemC                  int // stem output channels
	Width                  int // block channels
	Blocks                 int // number of removable blocks
	Classes                int
	Kind                   BlockKind
	HeadHidden             int // hidden units of the FC head (paper: 2 FC/ReLU layers)
}

func (c *MiniConfig) fill() {
	if c.InputH == 0 {
		c.InputH = 16
	}
	if c.InputW == 0 {
		c.InputW = c.InputH
	}
	if c.InputC == 0 {
		c.InputC = 1
	}
	if c.StemC == 0 {
		c.StemC = 8
	}
	if c.Width == 0 {
		c.Width = 12
	}
	if c.Blocks == 0 {
		c.Blocks = 4
	}
	if c.Classes == 0 {
		c.Classes = 5
	}
	if c.Kind == "" {
		c.Kind = ResidualBlocks
	}
	if c.HeadHidden == 0 {
		c.HeadHidden = 24
	}
}

// Build constructs a miniature network: Conv/BN/ReLU stem + MaxPool,
// cfg.Blocks removable blocks, and the paper's replacement-head shape
// (GAP + 2 FC/ReLU + FC producing logits).
func Build(cfg MiniConfig, rng *rand.Rand) (*Model, error) {
	cfg.fill()
	if cfg.Blocks < 0 {
		return nil, fmt.Errorf("nn: negative block count %d", cfg.Blocks)
	}
	m := &Model{
		Stem: NewSequential(
			NewConv(rng, 3, cfg.InputC, cfg.StemC, 1, true),
			NewBatchNorm(cfg.StemC),
			&ReLU{},
			&MaxPool{K: 2, Stride: 2, Same: false},
			NewConv(rng, 3, cfg.StemC, cfg.Width, 1, true),
			NewBatchNorm(cfg.Width),
			&ReLU{},
		),
	}
	for i := 0; i < cfg.Blocks; i++ {
		m.Blocks = append(m.Blocks, buildBlock(cfg, rng))
	}
	m.Head = BuildHead(cfg.Width, cfg.HeadHidden, cfg.Classes, rng)
	return m, nil
}

func buildBlock(cfg MiniConfig, rng *rand.Rand) Layer {
	switch cfg.Kind {
	case PlainBlocks:
		return NewSequential(
			NewConv(rng, 3, cfg.Width, cfg.Width, 1, true),
			NewBatchNorm(cfg.Width),
			&ReLU{},
		)
	case MobileBlocks:
		return NewSequential(
			NewDWConv(rng, 3, cfg.Width, 1, true),
			NewBatchNorm(cfg.Width),
			&ReLU{},
			NewConv(rng, 1, cfg.Width, cfg.Width, 1, true),
			NewBatchNorm(cfg.Width),
			&ReLU{},
		)
	default: // ResidualBlocks
		return &Residual{Body: NewSequential(
			NewConv(rng, 3, cfg.Width, cfg.Width, 1, true),
			NewBatchNorm(cfg.Width),
			&ReLU{},
			NewConv(rng, 3, cfg.Width, cfg.Width, 1, true),
			NewBatchNorm(cfg.Width),
		)}
	}
}

// BuildHead constructs the transfer head: GAP + FC/ReLU + FC/ReLU + FC
// (logits), mirroring Sec. III-B3's replacement head.
func BuildHead(inC, hidden, classes int, rng *rand.Rand) *Sequential {
	return NewSequential(
		&GlobalAvgPool{},
		NewDense(rng, inC, hidden),
		&ReLU{},
		NewDense(rng, hidden, hidden/2),
		&ReLU{},
		NewDense(rng, hidden/2, classes),
	)
}

// CutModel builds the miniature TRN: the first (Blocks - removed)
// blocks of src with transferred weights and a fresh head for the
// target task. The source model is left untouched.
func CutModel(src *Model, cfg MiniConfig, removed, classes int, rng *rand.Rand) (*Model, error) {
	cfg.fill()
	if removed < 0 || removed > len(src.Blocks) {
		return nil, fmt.Errorf("nn: cannot remove %d of %d blocks", removed, len(src.Blocks))
	}
	trnCfg := cfg
	trnCfg.Blocks = len(src.Blocks) - removed
	trnCfg.Classes = classes
	trn, err := Build(trnCfg, rng)
	if err != nil {
		return nil, err
	}
	if err := CopyFeatureWeights(trn, src); err != nil {
		return nil, err
	}
	return trn, nil
}
