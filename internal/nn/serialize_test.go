package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"netcut/internal/hands"
	"netcut/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := MiniConfig{InputH: 12, StemC: 6, Width: 8, Blocks: 2, Classes: 5}
	m, err := Build(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := hands.Generate(hands.Config{N: 40, Size: 12, Seed: 1})
	if _, err := Train(m, ds, TrainConfig{Epochs: 3, BatchSize: 8, Optimizer: NewAdam(1e-3), Seed: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(m, &buf); err != nil {
		t.Fatal(err)
	}

	m2, err := Build(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(m2, &buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 12, 12, 1)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	a, b := m.Predict(x), m2.Predict(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("loaded model diverges at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestLoadArchitectureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, _ := Build(MiniConfig{InputH: 12, Blocks: 2, Classes: 5}, rng)
	b, _ := Build(MiniConfig{InputH: 12, Blocks: 3, Classes: 5}, rng)
	var buf bytes.Buffer
	if err := Save(a, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Load(b, &buf); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// Width mismatch with same tensor count must also fail.
	c, _ := Build(MiniConfig{InputH: 12, Blocks: 2, Width: 24, Classes: 5}, rng)
	buf.Reset()
	if err := Save(a, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Load(c, &buf); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestLoadGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := Build(MiniConfig{InputH: 12, Blocks: 1, Classes: 5}, rng)
	if err := Load(m, bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
