package nn

import (
	"fmt"
	"math/rand"

	"netcut/internal/metric"
	"netcut/internal/tensor"
)

// Dataset yields (image, soft label) examples for training and
// evaluation. Images are single-example tensors (N = 1).
type Dataset interface {
	Len() int
	Example(i int) (*tensor.Tensor, []float64)
}

// Batch stacks the given examples into one tensor and label matrix.
func Batch(ds Dataset, idx []int) (*tensor.Tensor, [][]float64) {
	if len(idx) == 0 {
		panic("nn: empty batch")
	}
	first, _ := ds.Example(idx[0])
	x := tensor.New(len(idx), first.H, first.W, first.C)
	labels := make([][]float64, len(idx))
	per := first.H * first.W * first.C
	for bi, i := range idx {
		img, lbl := ds.Example(i)
		if img.Len() != per {
			panic(fmt.Sprintf("nn: example %d shape %s differs from batch shape %s", i, img.ShapeString(), first.ShapeString()))
		}
		copy(x.Data[bi*per:(bi+1)*per], img.Data)
		labels[bi] = lbl
	}
	return x, labels
}

// TrainConfig parameterizes one training phase.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// HeadOnly freezes the feature extractor (phase one of the paper's
	// fine-tuning protocol).
	HeadOnly bool
	Seed     int64
}

// Train runs mini-batch training and returns the mean loss per epoch.
func Train(m *Model, ds Dataset, cfg TrainConfig) ([]float64, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("nn: invalid train config %+v", cfg)
	}
	if cfg.Optimizer == nil {
		return nil, fmt.Errorf("nn: nil optimizer")
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("nn: empty dataset")
	}
	params := m.Params()
	if cfg.HeadOnly {
		params = m.HeadParams()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	losses := make([]float64, 0, cfg.Epochs)
	order := rng.Perm(ds.Len())
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var batches int
		for at := 0; at < len(order); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			x, labels := Batch(ds, order[at:end])
			logits := m.Forward(x, true)
			loss, grad := SoftCrossEntropy(logits, labels)
			m.Backward(grad)
			cfg.Optimizer.Step(params)
			if cfg.HeadOnly {
				// Feature gradients accumulated during backward are
				// discarded, not applied.
				for _, p := range m.FeatureParams() {
					p.ZeroGrad()
				}
			}
			epochLoss += loss
			batches++
		}
		losses = append(losses, epochLoss/float64(batches))
	}
	return losses, nil
}

// FineTune runs the paper's two-phase transfer protocol (Sec. III-B3)
// at the paper's learning rates: first the replacement head alone at
// lr 1e-3 with features frozen, then the whole network at 1e-4.
func FineTune(m *Model, ds Dataset, frozenEpochs, fullEpochs, batch int, seed int64) ([]float64, error) {
	return FineTuneLR(m, ds, frozenEpochs, fullEpochs, batch, seed, 1e-3, 1e-4)
}

// FineTuneLR is FineTune with explicit phase learning rates. Miniature
// networks trained for tens (not tens of thousands) of steps need a
// larger full-phase rate than the paper's 1e-4 to converge.
func FineTuneLR(m *Model, ds Dataset, frozenEpochs, fullEpochs, batch int, seed int64, frozenLR, fullLR float64) ([]float64, error) {
	l1, err := Train(m, ds, TrainConfig{
		Epochs: frozenEpochs, BatchSize: batch,
		Optimizer: NewAdam(frozenLR), HeadOnly: true, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("nn: frozen phase: %w", err)
	}
	l2, err := Train(m, ds, TrainConfig{
		Epochs: fullEpochs, BatchSize: batch,
		Optimizer: NewAdam(fullLR), Seed: seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("nn: full phase: %w", err)
	}
	return append(l1, l2...), nil
}

// Evaluate returns the mean angular similarity between the model's
// predicted distributions and the dataset's soft labels — the accuracy
// definition of Sec. III-B3.
func Evaluate(m *Model, ds Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var preds, labels [][]float64
	const chunk = 32
	for at := 0; at < ds.Len(); at += chunk {
		end := at + chunk
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, 0, end-at)
		for i := at; i < end; i++ {
			idx = append(idx, i)
		}
		x, lbls := Batch(ds, idx)
		probs := m.Predict(x)
		c := probs.C
		for n := 0; n < probs.N; n++ {
			row := make([]float64, c)
			copy(row, probs.Data[n*c:(n+1)*c])
			preds = append(preds, row)
			labels = append(labels, lbls[n])
		}
	}
	return metric.MeanAngularSimilarity(preds, labels)
}
