package nn

import (
	"fmt"
	"math"

	"netcut/internal/tensor"
)

// Softmax converts logits to probabilities along the channel dimension.
// The input must be spatially flat.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.H != 1 || logits.W != 1 {
		panic(fmt.Sprintf("nn: softmax over non-flat tensor %s", logits.ShapeString()))
	}
	y := logits.Clone()
	c := logits.C
	for n := 0; n < logits.N; n++ {
		row := y.Data[n*c : (n+1)*c]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for i, v := range row {
			row[i] = math.Exp(v - maxV)
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	return y
}

// SoftCrossEntropy computes the cross-entropy between softmax(logits)
// and soft target distributions (one per batch row), returning the mean
// loss and the gradient w.r.t. the logits. Soft targets are exactly
// what the HANDS labels are (Sec. III-B2): probabilistic grasp
// preferences rather than one-hot classes.
func SoftCrossEntropy(logits *tensor.Tensor, targets [][]float64) (float64, *tensor.Tensor) {
	if logits.N != len(targets) {
		panic(fmt.Sprintf("nn: %d logit rows but %d targets", logits.N, len(targets)))
	}
	probs := Softmax(logits)
	c := logits.C
	grad := tensor.New(logits.N, 1, 1, c)
	var loss float64
	invN := 1.0 / float64(logits.N)
	for n := 0; n < logits.N; n++ {
		t := targets[n]
		if len(t) != c {
			panic(fmt.Sprintf("nn: target %d has %d classes, want %d", n, len(t), c))
		}
		for i := 0; i < c; i++ {
			p := probs.Data[n*c+i]
			if t[i] > 0 {
				loss -= t[i] * math.Log(math.Max(p, 1e-12))
			}
			grad.Data[n*c+i] = (p - t[i]) * invN
		}
	}
	return loss * invN, grad
}
