package metric

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAngularIdentity(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	if !almost(AngularSimilarity(p, p), 1, 1e-12) {
		t.Fatalf("self-similarity = %v, want 1", AngularSimilarity(p, p))
	}
	if !almost(AngularDistance(p, p), 0, 1e-12) {
		t.Fatalf("self-distance = %v, want 0", AngularDistance(p, p))
	}
}

func TestAngularOrthogonal(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 1, 0}
	if !almost(AngularDistance(p, q), 1, 1e-12) {
		t.Fatalf("orthogonal distance = %v, want 1", AngularDistance(p, q))
	}
}

func TestAngularKnownValue(t *testing.T) {
	// 45 degrees between (1,0) and (1,1)/sqrt2: distance = 0.5.
	p := []float64{1, 0}
	q := []float64{1, 1}
	if d := AngularDistance(p, q); !almost(d, 0.5, 1e-12) {
		t.Fatalf("45-degree distance = %v, want 0.5", d)
	}
}

func TestAngularZeroVector(t *testing.T) {
	p := []float64{0, 0}
	q := []float64{1, 0}
	if d := AngularDistance(p, q); !almost(d, 1, 1e-12) {
		t.Fatalf("zero-vector distance = %v, want 1 (orthogonal convention)", d)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	CosineSimilarity([]float64{1}, []float64{1, 2})
}

// Properties over random probability-like vectors: symmetry, bounds and
// scale invariance.
func TestAngularProperties(t *testing.T) {
	f := func(a, b [5]uint8) bool {
		p := make([]float64, 5)
		q := make([]float64, 5)
		for i := 0; i < 5; i++ {
			p[i] = float64(a[i]) + 0.01
			q[i] = float64(b[i]) + 0.01
		}
		d1 := AngularDistance(p, q)
		d2 := AngularDistance(q, p)
		if !almost(d1, d2, 1e-12) {
			return false
		}
		if d1 < 0 || d1 > 1 {
			return false
		}
		// Scale invariance.
		ps := make([]float64, 5)
		for i := range p {
			ps[i] = p[i] * 7.5
		}
		return almost(AngularDistance(ps, q), d1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAngularSimilarity(t *testing.T) {
	preds := [][]float64{{1, 0}, {0, 1}}
	labels := [][]float64{{1, 0}, {1, 0}}
	if got := MeanAngularSimilarity(preds, labels); !almost(got, 0.5, 1e-12) {
		t.Fatalf("mean = %v, want 0.5", got)
	}
	if got := MeanAngularSimilarity(nil, nil); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(1.1, 1.0); !almost(got, 0.1, 1e-12) {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(0.9, 1.0); !almost(got, 0.1, 1e-12) {
		t.Fatalf("RelativeError = %v", got)
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("RelativeError with zero actual should be +Inf")
	}
	if RelativeError(0, 0) != 0 {
		t.Fatal("RelativeError(0,0) should be 0")
	}
}

func TestRelativeImprovement(t *testing.T) {
	if got := RelativeImprovement(0.9, 0.815); !almost(got, 0.10429, 1e-4) {
		t.Fatalf("RelativeImprovement = %v", got)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5, 1e-12) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Std(xs), 2, 1e-12) {
		t.Fatalf("Std = %v", Std(xs))
	}
	if Std([]float64{1}) != 0 {
		t.Fatal("Std of singleton should be 0")
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{2, 2, 4})
	if !almost(p[0], 0.25, 1e-12) || !almost(p[2], 0.5, 1e-12) {
		t.Fatalf("Normalize = %v", p)
	}
	u := Normalize([]float64{0, 0})
	if !almost(u[0], 0.5, 1e-12) {
		t.Fatalf("Normalize zero = %v, want uniform", u)
	}
}

// Property: normalized vectors sum to 1.
func TestNormalizeProperty(t *testing.T) {
	f := func(a [4]uint8) bool {
		p := make([]float64, 4)
		for i := range p {
			p[i] = float64(a[i])
		}
		Normalize(p)
		var s float64
		for _, v := range p {
			s += v
		}
		return almost(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
