// Package metric implements the angular similarity accuracy measure the
// robotic-hand application uses (Sec. III-B3). The visual classifier and
// the EMG classifier both emit probability distributions over grasp
// types; prediction quality against a probabilistic label is the angular
// similarity between the two distributions, not a one-hot accuracy.
package metric

import (
	"fmt"
	"math"
)

// CosineSimilarity returns the cosine of the angle between two
// non-negative vectors. Panics if lengths differ; returns 0 if either
// vector is all-zero.
func CosineSimilarity(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metric: length mismatch %d vs %d", len(p), len(q)))
	}
	var dot, np, nq float64
	for i := range p {
		dot += p[i] * q[i]
		np += p[i] * p[i]
		nq += q[i] * q[i]
	}
	if np == 0 || nq == 0 {
		return 0
	}
	c := dot / math.Sqrt(np*nq)
	// Clamp accumulated floating-point error out of acos' domain.
	return math.Max(-1, math.Min(1, c))
}

// AngularDistance returns the normalized angle between two non-negative
// vectors: (2/pi) * acos(cosine similarity), in [0, 1]. 0 means
// identical direction, 1 means orthogonal.
func AngularDistance(p, q []float64) float64 {
	return 2 / math.Pi * math.Acos(CosineSimilarity(p, q))
}

// AngularSimilarity returns 1 - AngularDistance: the "accuracy (angular
// distance)" axis of the paper's figures, where 1 is a perfect match.
func AngularSimilarity(p, q []float64) float64 {
	return 1 - AngularDistance(p, q)
}

// MeanAngularSimilarity averages AngularSimilarity over prediction/label
// pairs; it is the dataset-level accuracy the paper reports.
func MeanAngularSimilarity(preds, labels [][]float64) float64 {
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("metric: %d predictions vs %d labels", len(preds), len(labels)))
	}
	if len(preds) == 0 {
		return 0
	}
	var s float64
	for i := range preds {
		s += AngularSimilarity(preds[i], labels[i])
	}
	return s / float64(len(preds))
}

// RelativeError returns |estimate-actual| / actual. Used for the latency
// prediction errors of Fig. 9.
func RelativeError(estimate, actual float64) float64 {
	if actual == 0 {
		if estimate == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(estimate-actual) / math.Abs(actual)
}

// RelativeImprovement returns (a-b)/b: how much larger a is than b,
// e.g. the paper's "+10.43% relative accuracy improvement".
func RelativeImprovement(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return (a - b) / b
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Normalize scales a non-negative vector to sum to 1 in place and
// returns it. An all-zero vector becomes uniform.
func Normalize(p []float64) []float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	if s == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return p
	}
	for i := range p {
		p[i] /= s
	}
	return p
}
