// Package profiler implements the measurement protocol of Sec. IV-B2 and
// the per-layer latency tables of Sec. V-B1.
//
// Performance results follow the paper's protocol exactly: the device is
// warmed up with 200 inferences, then latency is reported as the average
// over another 800 timed runs. Per-layer tables are collected with
// event-style instrumentation, whose overhead makes the table sum
// slightly exceed the end-to-end latency — the effect the profiler-based
// estimator's ratio formulation (Eq. 1) cancels.
package profiler

import (
	"fmt"
	"hash/fnv"
	"io"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/lru"
	"netcut/internal/metric"
	"netcut/internal/telemetry"
)

// Protocol fixes the measurement counts. The zero value is invalid; use
// PaperProtocol.
type Protocol struct {
	WarmupRuns int
	TimedRuns  int
}

// PaperProtocol is the paper's 200-warm-up / 800-run protocol.
func PaperProtocol() Protocol { return Protocol{WarmupRuns: 200, TimedRuns: 800} }

func (p Protocol) validate() error {
	if p.WarmupRuns < 0 || p.TimedRuns <= 0 {
		return fmt.Errorf("profiler: invalid protocol %+v", p)
	}
	return nil
}

// Measurement is the end-to-end latency summary of one network.
type Measurement struct {
	Network string
	MeanMs  float64
	StdMs   float64
	Runs    int
}

// LayerStat is one row of a per-layer latency table: the mean measured
// latency of one layer across the timed runs.
type LayerStat struct {
	NodeID int
	Name   string
	Kind   graph.OpKind
	MeanMs float64
}

// Table is the per-layer profile of one network — the artefact Eq. (1)
// consumes. One table is built per unmodified network (Sec. V-B1: "the
// number of tables generated is equal to the number of unmodified
// networks").
type Table struct {
	Network string
	Layers  []LayerStat
	// EndToEndMs is the mean plain (non-instrumented) latency measured
	// under the same protocol.
	EndToEndMs float64
	// byID indexes Layers by graph node ID.
	byID map[int]int
}

// SumMs returns the sum of per-layer mean latencies; due to event
// overhead it exceeds EndToEndMs.
func (t *Table) SumMs() float64 {
	var s float64
	for _, l := range t.Layers {
		s += l.MeanMs
	}
	return s
}

// LayerMs returns the mean latency of the layer with the given graph
// node ID and whether it is present.
func (t *Table) LayerMs(nodeID int) (float64, bool) {
	i, ok := t.byID[nodeID]
	if !ok {
		return 0, false
	}
	return t.Layers[i].MeanMs, true
}

// Profiler measures networks on a device.
//
// A Profiler's measurements are pure functions of the graph: the device
// is a deterministic simulation, the protocol and base seed are fixed
// at construction, and each network's noise stream derives from its own
// name (sessionSeed). Measure and Profile therefore memoize their
// results per structural plan key — re-measuring a network the paper's
// pipeline already measured (the sweep re-visits every sample TRN, the
// figure generators re-cut and re-measure proposals) is a cache hit
// that returns the byte-identical Measurement or Table.
//
// Both memoization layers are bounded LRUs (DefaultMeasurementCacheCap,
// DefaultTableCacheCap): measurements are pure functions of
// (seed, device config, structure), so an evicted entry recomputes to
// the identical value and a stream of arbitrary user graphs runs in
// constant memory. The memo key is the device plan key, which folds in
// the device-calibration fingerprint (device.Config.Fingerprint) — so
// in a multi-target deployment two devices can never share a
// Measurement or Table for the same graph, even if their profilers
// were pointed at one cache.
type Profiler struct {
	dev   *device.Device
	proto Protocol
	seed  int64

	measurements *lru.Cache[uint64, Measurement] // by device-scoped plan key
	tables       *lru.Cache[uint64, *Table]      // by device-scoped plan key
}

// DefaultMeasurementCacheCap bounds the end-to-end measurement cache;
// DefaultTableCacheCap bounds the (larger, rarer) per-layer tables.
const (
	DefaultMeasurementCacheCap = 8192
	DefaultTableCacheCap       = 1024
)

// New returns a Profiler using the given device and protocol.
func New(dev *device.Device, proto Protocol, seed int64) (*Profiler, error) {
	if err := proto.validate(); err != nil {
		return nil, err
	}
	return &Profiler{
		dev:          dev,
		proto:        proto,
		seed:         seed,
		measurements: lru.New[uint64, Measurement](DefaultMeasurementCacheCap),
		tables:       lru.New[uint64, *Table](DefaultTableCacheCap),
	}, nil
}

// SetCacheCaps re-bounds the measurement and table caches (<= 0 means
// unbounded), evicting least-recently-used entries as needed.
func (p *Profiler) SetCacheCaps(measurements, tables int) {
	p.measurements.Resize(measurements)
	p.tables.Resize(tables)
}

// CacheStats reports the measurement- and table-cache counters, in that
// order.
func (p *Profiler) CacheStats() (measurements, tables lru.Stats) {
	return p.measurements.Stats(), p.tables.Stats()
}

// Instrument registers both memoization layers' hit/miss/eviction/
// occupancy series on reg (netcut_profiler_measurements and
// netcut_profiler_tables prefixes), labeled with the device the
// profiler measures on.
func (p *Profiler) Instrument(reg *telemetry.Registry) {
	labels := []telemetry.Label{{Key: "device", Value: p.dev.Config().Name}}
	lru.InstrumentWith(reg, "netcut_profiler_measurements", labels, p.measurements)
	lru.InstrumentWith(reg, "netcut_profiler_tables", labels, p.tables)
}

// HasMeasurement reports whether g's end-to-end measurement is already
// memoized — the warm-path predicate the serving layer uses to classify
// request latency as cold or warm. It plans g if needed (work Measure
// would do anyway, shared via the device's plan cache) but does not
// touch the measurement cache's recency order or counters.
func (p *Profiler) HasMeasurement(g *graph.Graph) bool {
	return p.measurements.Contains(p.dev.PlanKey(g))
}

// sessionSeed derives the per-network measurement seed from the
// profiler's base seed: seed XOR a hash of the network name. Each
// network therefore draws its own reproducible noise stream that is
// independent of every other network's, which is what lets the
// experiment harness measure many networks concurrently and still get
// results that are bit-identical to a serial run in any order.
func sessionSeed(base int64, name string) int64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	return base ^ int64(h.Sum64())
}

// Measure runs the warm-up/timed protocol and returns the end-to-end
// latency summary of g. Structurally identical graphs share one cached
// result (see the Profiler doc comment for why this is exact).
func (p *Profiler) Measure(g *graph.Graph) Measurement {
	// A concurrent miss computes the identical value; either store wins.
	return p.measurements.GetOrCompute(p.dev.PlanKey(g), func() Measurement {
		return p.measure(g)
	})
}

func (p *Profiler) measure(g *graph.Graph) Measurement {
	s := p.dev.Open(g, sessionSeed(p.seed, g.Name))
	for i := 0; i < p.proto.WarmupRuns; i++ {
		s.InferMs()
	}
	lat := make([]float64, p.proto.TimedRuns)
	for i := range lat {
		lat[i] = s.InferMs()
	}
	return Measurement{
		Network: g.Name,
		MeanMs:  metric.Mean(lat),
		StdMs:   metric.Std(lat),
		Runs:    p.proto.TimedRuns,
	}
}

// Profile runs the protocol with per-layer event instrumentation and
// returns the layer table for g. Structurally identical graphs share
// one cached table; callers treat tables as immutable.
func (p *Profiler) Profile(g *graph.Graph) *Table {
	return p.tables.GetOrCompute(p.dev.PlanKey(g), func() *Table {
		return p.profile(g)
	})
}

func (p *Profiler) profile(g *graph.Graph) *Table {
	s := p.dev.Open(g, sessionSeed(p.seed, g.Name))
	for i := 0; i < p.proto.WarmupRuns; i++ {
		s.InferMs()
	}
	// The execution plan — and therefore the profiled row order — is
	// identical on every run, so the first run fixes the layer order and
	// the remaining runs accumulate positionally, with no map ops in the
	// hot loop.
	var endToEnd float64
	var rows []device.LayerTimeMs
	var sums []float64
	for i := 0; i < p.proto.TimedRuns; i++ {
		var total float64
		rows, total = s.InferProfiledInto(rows[:0])
		endToEnd += total
		if sums == nil {
			sums = make([]float64, len(rows))
		}
		for ri := range rows {
			sums[ri] += rows[ri].Ms
		}
	}
	tbl := &Table{
		Network:    g.Name,
		EndToEndMs: endToEnd / float64(p.proto.TimedRuns),
		Layers:     make([]LayerStat, 0, len(rows)),
		byID:       make(map[int]int, len(rows)),
	}
	for ri := range rows {
		r := &rows[ri]
		tbl.byID[r.NodeID] = len(tbl.Layers)
		tbl.Layers = append(tbl.Layers, LayerStat{
			NodeID: r.NodeID,
			Name:   r.Name,
			Kind:   r.Kind,
			MeanMs: sums[ri] / float64(p.proto.TimedRuns),
		})
	}
	return tbl
}
