// Package profiler implements the measurement protocol of Sec. IV-B2 and
// the per-layer latency tables of Sec. V-B1.
//
// Performance results follow the paper's protocol exactly: the device is
// warmed up with 200 inferences, then latency is reported as the average
// over another 800 timed runs. Per-layer tables are collected with
// event-style instrumentation, whose overhead makes the table sum
// slightly exceed the end-to-end latency — the effect the profiler-based
// estimator's ratio formulation (Eq. 1) cancels.
package profiler

import (
	"fmt"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/metric"
)

// Protocol fixes the measurement counts. The zero value is invalid; use
// PaperProtocol.
type Protocol struct {
	WarmupRuns int
	TimedRuns  int
}

// PaperProtocol is the paper's 200-warm-up / 800-run protocol.
func PaperProtocol() Protocol { return Protocol{WarmupRuns: 200, TimedRuns: 800} }

func (p Protocol) validate() error {
	if p.WarmupRuns < 0 || p.TimedRuns <= 0 {
		return fmt.Errorf("profiler: invalid protocol %+v", p)
	}
	return nil
}

// Measurement is the end-to-end latency summary of one network.
type Measurement struct {
	Network string
	MeanMs  float64
	StdMs   float64
	Runs    int
}

// LayerStat is one row of a per-layer latency table: the mean measured
// latency of one layer across the timed runs.
type LayerStat struct {
	NodeID int
	Name   string
	Kind   graph.OpKind
	MeanMs float64
}

// Table is the per-layer profile of one network — the artefact Eq. (1)
// consumes. One table is built per unmodified network (Sec. V-B1: "the
// number of tables generated is equal to the number of unmodified
// networks").
type Table struct {
	Network string
	Layers  []LayerStat
	// EndToEndMs is the mean plain (non-instrumented) latency measured
	// under the same protocol.
	EndToEndMs float64
	// byID indexes Layers by graph node ID.
	byID map[int]int
}

// SumMs returns the sum of per-layer mean latencies; due to event
// overhead it exceeds EndToEndMs.
func (t *Table) SumMs() float64 {
	var s float64
	for _, l := range t.Layers {
		s += l.MeanMs
	}
	return s
}

// LayerMs returns the mean latency of the layer with the given graph
// node ID and whether it is present.
func (t *Table) LayerMs(nodeID int) (float64, bool) {
	i, ok := t.byID[nodeID]
	if !ok {
		return 0, false
	}
	return t.Layers[i].MeanMs, true
}

// Profiler measures networks on a device.
type Profiler struct {
	dev   *device.Device
	proto Protocol
	seed  int64
}

// New returns a Profiler using the given device and protocol.
func New(dev *device.Device, proto Protocol, seed int64) (*Profiler, error) {
	if err := proto.validate(); err != nil {
		return nil, err
	}
	return &Profiler{dev: dev, proto: proto, seed: seed}, nil
}

// Measure runs the warm-up/timed protocol and returns the end-to-end
// latency summary of g.
func (p *Profiler) Measure(g *graph.Graph) Measurement {
	s := p.dev.Open(g, p.seed)
	for i := 0; i < p.proto.WarmupRuns; i++ {
		s.InferMs()
	}
	lat := make([]float64, p.proto.TimedRuns)
	for i := range lat {
		lat[i] = s.InferMs()
	}
	return Measurement{
		Network: g.Name,
		MeanMs:  metric.Mean(lat),
		StdMs:   metric.Std(lat),
		Runs:    p.proto.TimedRuns,
	}
}

// Profile runs the protocol with per-layer event instrumentation and
// returns the layer table for g.
func (p *Profiler) Profile(g *graph.Graph) *Table {
	s := p.dev.Open(g, p.seed)
	for i := 0; i < p.proto.WarmupRuns; i++ {
		s.InferMs()
	}
	sums := map[int]float64{}
	names := map[int]graph.OpKind{}
	order := []int{}
	var endToEnd float64
	for i := 0; i < p.proto.TimedRuns; i++ {
		rows, total := s.InferProfiledMs()
		endToEnd += total
		for _, r := range rows {
			if _, seen := sums[r.NodeID]; !seen {
				order = append(order, r.NodeID)
				names[r.NodeID] = r.Kind
			}
			sums[r.NodeID] += r.Ms
		}
	}
	tbl := &Table{
		Network:    g.Name,
		EndToEndMs: endToEnd / float64(p.proto.TimedRuns),
		byID:       map[int]int{},
	}
	for _, id := range order {
		tbl.byID[id] = len(tbl.Layers)
		tbl.Layers = append(tbl.Layers, LayerStat{
			NodeID: id,
			Name:   g.Node(id).Name,
			Kind:   names[id],
			MeanMs: sums[id] / float64(p.proto.TimedRuns),
		})
	}
	return tbl
}
