package profiler

import (
	"fmt"
	"math"

	"netcut/internal/graph"
	"netcut/internal/lru"
)

// Warm-state snapshot/restore of the measurement and table memos.
// Measurements and tables are pure functions of (seed, protocol, device
// calibration, structure) — the caller (serve.Planner) rejects
// snapshots whose seed, protocol or calibration fingerprint do not
// match, so a restored entry is byte-identical to the one a fresh
// measurement would produce and eviction transparency carries over.

// MeasurementState is one snapshotted end-to-end measurement, keyed by
// the device-scoped plan key.
type MeasurementState struct {
	Key uint64 `json:"key"`
	// The Measurement fields, flattened for a stable wire shape.
	Network string  `json:"network"`
	MeanMs  float64 `json:"mean_ms"`
	StdMs   float64 `json:"std_ms"`
	Runs    int     `json:"runs"`
}

// TableRowState is one per-layer row of a snapshotted table.
type TableRowState struct {
	NodeID int     `json:"id"`
	Name   string  `json:"name,omitempty"`
	Kind   int     `json:"kind"`
	MeanMs float64 `json:"mean_ms"`
}

// TableState is one snapshotted per-layer table, keyed by the
// device-scoped plan key.
type TableState struct {
	Key        uint64          `json:"key"`
	Network    string          `json:"network"`
	EndToEndMs float64         `json:"end_to_end_ms"`
	Layers     []TableRowState `json:"layers"`
}

// SnapshotMeasurements exports the end-to-end measurement memo in LRU
// order (least recently used first).
func (p *Profiler) SnapshotMeasurements() []MeasurementState {
	entries := p.measurements.Snapshot()
	out := make([]MeasurementState, 0, len(entries))
	for _, e := range entries {
		out = append(out, MeasurementState{
			Key:     e.Key,
			Network: e.Val.Network,
			MeanMs:  e.Val.MeanMs,
			StdMs:   e.Val.StdMs,
			Runs:    e.Val.Runs,
		})
	}
	return out
}

// PreparedMeasurements is a decoded, fully validated measurement
// section, ready to apply. The prepare/apply split lets a restoring
// layer validate every section of a snapshot before applying any of
// them while building each entry exactly once.
type PreparedMeasurements struct {
	entries []lru.Entry[uint64, Measurement]
}

// PrepareMeasurements decodes and validates snapshotted measurements
// without touching any cache.
func PrepareMeasurements(entries []MeasurementState) (PreparedMeasurements, error) {
	ms, err := buildMeasurementEntries(entries)
	return PreparedMeasurements{entries: ms}, err
}

// RestoreMeasurements applies a prepared measurement section,
// preserving recency order (cannot fail: validation happened in
// PrepareMeasurements).
func (p *Profiler) RestoreMeasurements(m PreparedMeasurements) {
	p.measurements.Restore(m.entries)
}

func buildMeasurementEntries(entries []MeasurementState) ([]lru.Entry[uint64, Measurement], error) {
	ms := make([]lru.Entry[uint64, Measurement], 0, len(entries))
	for i, e := range entries {
		if !finite(e.MeanMs) || !finite(e.StdMs) || e.MeanMs < 0 || e.StdMs < 0 || e.Runs <= 0 {
			return nil, fmt.Errorf("profiler: measurement entry %d (%s): non-physical values", i, e.Network)
		}
		ms = append(ms, lru.Entry[uint64, Measurement]{Key: e.Key, Val: Measurement{
			Network: e.Network, MeanMs: e.MeanMs, StdMs: e.StdMs, Runs: e.Runs,
		}})
	}
	return ms, nil
}

// SnapshotTables exports the per-layer table memo in LRU order.
func (p *Profiler) SnapshotTables() []TableState {
	entries := p.tables.Snapshot()
	out := make([]TableState, 0, len(entries))
	for _, e := range entries {
		ts := TableState{
			Key:        e.Key,
			Network:    e.Val.Network,
			EndToEndMs: e.Val.EndToEndMs,
			Layers:     make([]TableRowState, 0, len(e.Val.Layers)),
		}
		for _, l := range e.Val.Layers {
			ts.Layers = append(ts.Layers, TableRowState{
				NodeID: l.NodeID, Name: l.Name, Kind: int(l.Kind), MeanMs: l.MeanMs,
			})
		}
		out = append(out, ts)
	}
	return out
}

// PreparedTables is a decoded, fully validated table section (node-ID
// indexes rebuilt), ready to apply.
type PreparedTables struct {
	entries []lru.Entry[uint64, *Table]
}

// PrepareTables decodes and validates snapshotted tables without
// touching any cache.
func PrepareTables(entries []TableState) (PreparedTables, error) {
	ts, err := buildTableEntries(entries)
	return PreparedTables{entries: ts}, err
}

// RestoreTables applies a prepared table section, preserving recency
// order (cannot fail: validation happened in PrepareTables).
func (p *Profiler) RestoreTables(t PreparedTables) {
	p.tables.Restore(t.entries)
}

func buildTableEntries(entries []TableState) ([]lru.Entry[uint64, *Table], error) {
	ts := make([]lru.Entry[uint64, *Table], 0, len(entries))
	for i, e := range entries {
		if !finite(e.EndToEndMs) || e.EndToEndMs < 0 {
			return nil, fmt.Errorf("profiler: table entry %d (%s): bad end-to-end latency %v", i, e.Network, e.EndToEndMs)
		}
		tbl := &Table{
			Network:    e.Network,
			EndToEndMs: e.EndToEndMs,
			Layers:     make([]LayerStat, 0, len(e.Layers)),
			byID:       make(map[int]int, len(e.Layers)),
		}
		for _, l := range e.Layers {
			if !finite(l.MeanMs) || l.MeanMs < 0 {
				return nil, fmt.Errorf("profiler: table entry %d (%s): node %d: bad latency %v", i, e.Network, l.NodeID, l.MeanMs)
			}
			if _, dup := tbl.byID[l.NodeID]; dup {
				return nil, fmt.Errorf("profiler: table entry %d (%s): duplicate node %d", i, e.Network, l.NodeID)
			}
			tbl.byID[l.NodeID] = len(tbl.Layers)
			tbl.Layers = append(tbl.Layers, LayerStat{
				NodeID: l.NodeID, Name: l.Name, Kind: graph.OpKind(l.Kind), MeanMs: l.MeanMs,
			})
		}
		ts = append(ts, lru.Entry[uint64, *Table]{Key: e.Key, Val: tbl})
	}
	return ts, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
