package profiler

import (
	"fmt"
	"reflect"
	"testing"

	"netcut/internal/device"
	"netcut/internal/graph"
)

func variantNet(i int) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("variant-%d", i), graph.Shape{H: 16, W: 16, C: 3}, 4)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8+i%5, 1, graph.Same)
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 4)
	b.Softmax(x)
	return b.MustFinish()
}

// TestMeasurementEvictionTransparent forces the measurement and table
// caches to evict and checks that re-measuring an evicted network
// reproduces the pre-eviction Measurement and Table exactly, and that
// the caches never exceed their caps.
func TestMeasurementEvictionTransparent(t *testing.T) {
	p, err := New(device.New(device.Xavier()), Protocol{WarmupRuns: 5, TimedRuns: 20}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 3
	p.SetCacheCaps(cap, cap)

	g0 := variantNet(0)
	wantM := p.Measure(g0)
	wantT := p.Profile(g0)

	for i := 1; i < 12; i++ { // evict variant-0 from both caches
		g := variantNet(i)
		p.Measure(g)
		p.Profile(g)
		mStats, tStats := p.CacheStats()
		if mStats.Len > cap || tStats.Len > cap {
			t.Fatalf("cache size exceeded cap: measurements %d, tables %d > %d", mStats.Len, tStats.Len, cap)
		}
	}
	mStats, tStats := p.CacheStats()
	if mStats.Evictions == 0 || tStats.Evictions == 0 {
		t.Fatalf("expected evictions; stats %+v / %+v", mStats, tStats)
	}

	// Fresh copies so the device's pointer-level cache cannot mask a
	// structural re-measure.
	gotM := p.Measure(variantNet(0))
	gotT := p.Profile(variantNet(0))
	if gotM != wantM {
		t.Fatalf("post-eviction Measurement %+v differs from original %+v", gotM, wantM)
	}
	if !reflect.DeepEqual(gotT, wantT) {
		t.Fatalf("post-eviction Table differs from original:\n got %+v\nwant %+v", gotT, wantT)
	}
}
