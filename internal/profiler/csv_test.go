package profiler

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"netcut/internal/zoo"
)

func TestCSVRoundTrip(t *testing.T) {
	p := newProfiler(t, Protocol{WarmupRuns: 20, TimedRuns: 30})
	g, _ := zoo.ByName("MobileNetV1 (0.25)")
	tbl := p.Profile(g)

	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(tbl.Network, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != len(tbl.Layers) {
		t.Fatalf("round trip lost layers: %d vs %d", len(got.Layers), len(tbl.Layers))
	}
	if math.Abs(got.EndToEndMs-tbl.EndToEndMs) > 1e-6 {
		t.Fatalf("end-to-end %v vs %v", got.EndToEndMs, tbl.EndToEndMs)
	}
	for _, l := range tbl.Layers {
		ms, ok := got.LayerMs(l.NodeID)
		if !ok {
			t.Fatalf("layer %d lost", l.NodeID)
		}
		if math.Abs(ms-l.MeanMs) > 1e-6 {
			t.Fatalf("layer %d latency %v vs %v", l.NodeID, ms, l.MeanMs)
		}
	}
	if math.Abs(got.SumMs()-tbl.SumMs()) > 1e-4 {
		t.Fatalf("sum %v vs %v", got.SumMs(), tbl.SumMs())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "node_id,name,kind,mean_ms\n",
		"bad id":       "node_id,name,kind,mean_ms\nx,conv,Conv,0.1\n-1,end_to_end,,1\n",
		"bad latency":  "node_id,name,kind,mean_ms\n1,conv,Conv,zzz\n-1,end_to_end,,1\n",
		"no summary":   "node_id,name,kind,mean_ms\n1,conv,Conv,0.1\n",
		"wrong fields": "node_id,name,kind\n1,conv,Conv\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV("x", strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
