package profiler

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV dumps the per-layer table as CSV (node_id, name, kind,
// mean_ms), with a trailing summary row carrying the end-to-end mean —
// the interchange format cmd/netprof and downstream tooling share.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node_id", "name", "kind", "mean_ms"}); err != nil {
		return fmt.Errorf("profiler: csv header: %w", err)
	}
	for _, l := range t.Layers {
		rec := []string{
			strconv.Itoa(l.NodeID),
			l.Name,
			l.Kind.String(),
			strconv.FormatFloat(l.MeanMs, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("profiler: csv row: %w", err)
		}
	}
	if err := cw.Write([]string{"-1", "end_to_end", "", strconv.FormatFloat(t.EndToEndMs, 'f', 6, 64)}); err != nil {
		return fmt.Errorf("profiler: csv summary: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV. Kind information is not
// reconstructed (the string form is informational); lookups by node ID
// and Eq. (1) sums work as with a freshly profiled table.
func ReadCSV(network string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("profiler: csv read: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("profiler: csv too short")
	}
	t := &Table{Network: network, byID: map[int]int{}}
	for _, rec := range rows[1:] {
		if len(rec) != 4 {
			return nil, fmt.Errorf("profiler: csv row has %d fields", len(rec))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("profiler: csv node id %q: %w", rec[0], err)
		}
		ms, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("profiler: csv latency %q: %w", rec[3], err)
		}
		if id == -1 {
			t.EndToEndMs = ms
			continue
		}
		t.byID[id] = len(t.Layers)
		t.Layers = append(t.Layers, LayerStat{NodeID: id, Name: rec[1], MeanMs: ms})
	}
	if t.EndToEndMs == 0 {
		return nil, fmt.Errorf("profiler: csv missing end_to_end summary row")
	}
	return t, nil
}
