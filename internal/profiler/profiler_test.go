package profiler

import (
	"math"
	"testing"

	"netcut/internal/device"
	"netcut/internal/zoo"
)

func newProfiler(t *testing.T, proto Protocol) *Profiler {
	t.Helper()
	p, err := New(device.New(device.Xavier()), proto, 11)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInvalidProtocolRejected(t *testing.T) {
	if _, err := New(device.New(device.Xavier()), Protocol{}, 1); err == nil {
		t.Fatal("zero protocol accepted")
	}
	if _, err := New(device.New(device.Xavier()), Protocol{WarmupRuns: -1, TimedRuns: 5}, 1); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestMeasureMatchesSteadyState(t *testing.T) {
	p := newProfiler(t, PaperProtocol())
	d := device.New(device.Xavier())
	g, _ := zoo.ByName("MobileNetV1 (0.5)")
	m := p.Measure(g)
	want := d.LatencyMs(g)
	if math.Abs(m.MeanMs-want)/want > 0.01 {
		t.Fatalf("measured %.4f, steady state %.4f", m.MeanMs, want)
	}
	if m.StdMs <= 0 {
		t.Fatal("no measurement spread recorded")
	}
	if m.Runs != 800 {
		t.Fatalf("runs = %d, want 800", m.Runs)
	}
}

func TestMeasureWithoutWarmupIsBiased(t *testing.T) {
	// Omitting warm-up must inflate the mean: the protocol exists for a
	// reason.
	cold := newProfiler(t, Protocol{WarmupRuns: 0, TimedRuns: 50})
	warm := newProfiler(t, Protocol{WarmupRuns: 200, TimedRuns: 50})
	g, _ := zoo.ByName("MobileNetV1 (0.25)")
	if c, w := cold.Measure(g).MeanMs, warm.Measure(g).MeanMs; c <= w*1.05 {
		t.Fatalf("cold mean %.4f not noticeably above warm mean %.4f", c, w)
	}
}

func TestProfileTable(t *testing.T) {
	p := newProfiler(t, Protocol{WarmupRuns: 200, TimedRuns: 100})
	g, _ := zoo.ByName("ResNet-50")
	tbl := p.Profile(g)
	if len(tbl.Layers) != g.LayerCount() {
		t.Fatalf("table has %d layers, want %d", len(tbl.Layers), g.LayerCount())
	}
	if tbl.SumMs() <= tbl.EndToEndMs {
		t.Fatalf("table sum %.4f should exceed end-to-end %.4f (event overhead)",
			tbl.SumMs(), tbl.EndToEndMs)
	}
	if tbl.SumMs() > tbl.EndToEndMs*1.3 {
		t.Fatalf("event overhead implausible: sum %.4f vs %.4f", tbl.SumMs(), tbl.EndToEndMs)
	}
	// Lookup by node ID works and the input node is absent.
	if _, ok := tbl.LayerMs(0); ok {
		t.Fatal("input node should not be profiled")
	}
	if ms, ok := tbl.LayerMs(1); !ok || ms <= 0 {
		t.Fatalf("first conv layer missing or non-positive: %v %v", ms, ok)
	}
}

func TestProfileDeterministicWithSeed(t *testing.T) {
	a := newProfiler(t, Protocol{WarmupRuns: 10, TimedRuns: 20})
	b := newProfiler(t, Protocol{WarmupRuns: 10, TimedRuns: 20})
	g, _ := zoo.ByName("MobileNetV1 (0.25)")
	ta, tb := a.Profile(g), b.Profile(g)
	if ta.SumMs() != tb.SumMs() || ta.EndToEndMs != tb.EndToEndMs {
		t.Fatal("same seed produced different tables")
	}
}

func TestSevenTablesForSevenNetworks(t *testing.T) {
	// Sec. V-B1: one table per unmodified network.
	p := newProfiler(t, Protocol{WarmupRuns: 20, TimedRuns: 30})
	seen := map[string]bool{}
	for _, g := range zoo.Paper7() {
		tbl := p.Profile(g)
		if seen[tbl.Network] {
			t.Fatalf("duplicate table for %s", tbl.Network)
		}
		seen[tbl.Network] = true
	}
	if len(seen) != 7 {
		t.Fatalf("built %d tables, want 7", len(seen))
	}
}

// TestMeasurementsAreDeviceScoped pins cross-target cache isolation at
// the profiler layer: the same graph measured on two registered
// devices uses different memo keys (no shared entries) and lands at
// different latencies, while a repeat on one device stays a cache hit.
func TestMeasurementsAreDeviceScoped(t *testing.T) {
	proto := Protocol{WarmupRuns: 10, TimedRuns: 40}
	g, _ := zoo.ByName("MobileNetV1 (0.5)")
	devA := device.New(device.Xavier())
	devB := device.New(device.ServerGPU())
	if devA.PlanKey(g) == devB.PlanKey(g) {
		t.Fatal("two calibrations share one plan key: profiler memos would alias")
	}
	pa, err := New(devA, proto, 11)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(devB, proto, 11)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := pa.Measure(g), pb.Measure(g)
	if ma.MeanMs == mb.MeanMs {
		t.Fatalf("identical mean %v ms on two differently calibrated devices", ma.MeanMs)
	}
	// Repeats stay warm per device.
	if again := pa.Measure(g); again != ma {
		t.Fatal("repeated measurement on one device diverged")
	}
	sa, _ := pa.CacheStats()
	if sa.Hits == 0 {
		t.Fatal("repeat on one device was not a cache hit")
	}
}
