package svr

import (
	"math"
	"math/rand"
	"testing"
)

func svrData(n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = math.Sin(X[i][0]) + 0.5*X[i][1]
	}
	return X, y
}

func BenchmarkTrainSVR(b *testing.B) {
	X, y := svrData(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 1e4, Epsilon: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridSearch(b *testing.B) {
	X, y := svrData(30)
	grid := []GridPoint{{0.1, 1e4}, {1, 1e4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GridSearch(X, y, grid, 5, 0.05, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	X, y := svrData(60)
	m, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 1e4, Epsilon: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, -0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
