package svr

import (
	"math"
	"math/rand"
	"testing"
)

// warmData synthesizes a smooth 1-D regression problem.
func warmData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := 4*rng.Float64() - 2
		X[i] = []float64{x}
		y[i] = math.Sin(2*x) + 0.3*x
	}
	return X, y
}

// TestTrainWarmDeterministic pins warm-start determinism: the same
// (data, params, beta0) must always reach the identical model.
func TestTrainWarmDeterministic(t *testing.T) {
	X, y := warmData(60, 5)
	small, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 10, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Model {
		m, err := TrainWarm(X, y, RBF{Gamma: 0.5}, Params{C: 1000, Epsilon: 0.01}, small.beta)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.b != b.b {
		t.Fatalf("bias differs across identical warm starts: %v vs %v", a.b, b.b)
	}
	for i := range a.beta {
		if a.beta[i] != b.beta[i] {
			t.Fatalf("beta[%d] differs: %v vs %v", i, a.beta[i], b.beta[i])
		}
	}
}

// TestTrainWarmMatchesColdQuality checks a warm-started solve reaches
// the same solution quality as a cold start at the same grid point.
func TestTrainWarmMatchesColdQuality(t *testing.T) {
	X, y := warmData(60, 7)
	rmse := func(m *Model) float64 {
		var s float64
		for i := range X {
			d := m.Predict(X[i]) - y[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(X)))
	}
	small, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 1, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 1000, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := TrainWarm(X, y, RBF{Gamma: 0.5}, Params{C: 1000, Epsilon: 0.01}, small.beta)
	if err != nil {
		t.Fatal(err)
	}
	cr, wr := rmse(cold), rmse(warm)
	if wr > cr*1.2+1e-9 {
		t.Fatalf("warm-started RMSE %v much worse than cold %v", wr, cr)
	}
	// The solution must stay inside the new box.
	for i, b := range warm.beta {
		if math.Abs(b) > 1000+1e-9 {
			t.Fatalf("beta[%d] = %v outside box", i, b)
		}
	}
}

// TestTrainWarmIgnoresUnusableBeta checks that a wrong-length or
// box-infeasible beta0 falls back to a cold start instead of seeding
// the solver with a state it cannot repair (the pairwise updates
// preserve the starting coefficient sum, so clipping would silently
// violate the dual constraints).
func TestTrainWarmIgnoresUnusableBeta(t *testing.T) {
	X, y := warmData(30, 9)
	cold, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 100, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	infeasible := make([]float64, len(X))
	for i := range infeasible {
		infeasible[i] = 1e6 // far outside the C=100 box
	}
	for name, beta0 := range map[string][]float64{
		"mismatched length": {1, 2, 3},
		"box-infeasible":    infeasible,
	} {
		warm, err := TrainWarm(X, y, RBF{Gamma: 0.5}, Params{C: 100, Epsilon: 0.01}, beta0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range cold.beta {
			if cold.beta[i] != warm.beta[i] {
				t.Fatalf("%s beta0 changed the solve at %d", name, i)
			}
		}
	}
}

// TestGroupByGamma checks the warm-start chains: first-seen gamma
// order, ascending C within each chain, and full index coverage.
func TestGroupByGamma(t *testing.T) {
	grid := []GridPoint{
		{Gamma: 1, C: 1e6}, {Gamma: 0.1, C: 1e2}, {Gamma: 1, C: 1e2},
		{Gamma: 0.1, C: 1e4}, {Gamma: 1, C: 1e4},
	}
	groups := groupByGamma(grid)
	if len(groups) != 2 || groups[0].gamma != 1 || groups[1].gamma != 0.1 {
		t.Fatalf("groups = %+v", groups)
	}
	seen := map[int]bool{}
	for _, g := range groups {
		for i := 1; i < len(g.gridIdx); i++ {
			if grid[g.gridIdx[i-1]].C >= grid[g.gridIdx[i]].C {
				t.Fatalf("group gamma=%v not ascending in C: %+v", g.gamma, g.gridIdx)
			}
		}
		for _, i := range g.gridIdx {
			seen[i] = true
		}
	}
	if len(seen) != len(grid) {
		t.Fatalf("groups cover %d of %d grid points", len(seen), len(grid))
	}
}
