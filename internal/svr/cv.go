package svr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netcut/internal/par"
)

// KFold returns k disjoint validation index sets covering 0..n-1,
// shuffled with the given seed. Fold sizes differ by at most one.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("svr: cannot split %d samples into %d folds", n, k)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds, nil
}

// GridPoint is one hyper-parameter combination of the search.
type GridPoint struct {
	Gamma float64 // RBF kernel coefficient
	C     float64
}

// PaperGrid returns the search grid. It brackets the paper's reported
// optimum (gamma = 1e-1, C = 1e6) the way a practitioner's log-spaced
// grid would (Sec. V-B2; the paper found grid search beat random search
// at this sample size).
func PaperGrid() []GridPoint {
	var grid []GridPoint
	for _, g := range []float64{1e-3, 1e-2, 1e-1, 1, 10} {
		for _, c := range []float64{1e2, 1e4, 1e6} {
			grid = append(grid, GridPoint{Gamma: g, C: c})
		}
	}
	return grid
}

// CVResult reports the cross-validated error of one grid point.
type CVResult struct {
	Point GridPoint
	RMSE  float64
}

// foldSplit is one fold's training matrix and validation index set,
// built once and shared read-only across every grid point (the serial
// implementation rebuilt it len(grid) times).
type foldSplit struct {
	trX [][]float64
	trY []float64
	val []int
}

func makeFoldSplits(X [][]float64, y []float64, folds [][]int) []foldSplit {
	splits := make([]foldSplit, len(folds))
	inVal := make([]bool, len(X))
	for fi, val := range folds {
		for _, i := range val {
			inVal[i] = true
		}
		s := foldSplit{
			trX: make([][]float64, 0, len(X)-len(val)),
			trY: make([]float64, 0, len(X)-len(val)),
			val: val,
		}
		for i := range X {
			if !inVal[i] {
				s.trX = append(s.trX, X[i])
				s.trY = append(s.trY, y[i])
			}
		}
		for _, i := range val {
			inVal[i] = false
		}
		splits[fi] = s
	}
	return splits
}

// gammaGroup is the warm-start unit of the grid: every point sharing
// one gamma, ordered by ascending C. gridIdx maps back into the
// caller's grid so the result table keeps its order.
type gammaGroup struct {
	gamma   float64
	gridIdx []int
}

// groupByGamma partitions the grid into gamma groups (first-seen gamma
// order) and sorts each group's points by ascending C, the direction in
// which a smaller-C solution stays box-feasible.
func groupByGamma(grid []GridPoint) []gammaGroup {
	var groups []gammaGroup
	byGamma := map[float64]int{}
	for i, gp := range grid {
		gi, ok := byGamma[gp.Gamma]
		if !ok {
			gi = len(groups)
			byGamma[gp.Gamma] = gi
			groups = append(groups, gammaGroup{gamma: gp.Gamma})
		}
		groups[gi].gridIdx = append(groups[gi].gridIdx, i)
	}
	for gi := range groups {
		idx := groups[gi].gridIdx
		sort.SliceStable(idx, func(a, b int) bool { return grid[idx[a]].C < grid[idx[b]].C })
	}
	return groups
}

// GridSearch selects the grid point minimizing k-fold cross-validated
// RMSE of an RBF epsilon-SVR on (X, y). X should be standardized.
// Returns the winner and the full result table, sorted as given in grid.
//
// The parallel unit is one (gamma group x fold) chain: within a chain,
// C values are visited in ascending order and each solve warm-starts
// from the previous one's dual vector (the kernel matrix is fixed per
// gamma, and a smaller-C solution stays feasible as the box widens), so
// the expensive large-C points start near their optimum. Chains are
// pure functions of their (shared, read-only) fold split and gamma
// group, and fold errors are reduced in fold order per grid point, so
// the selected winner and the result table are independent of
// scheduling and GOMAXPROCS.
func GridSearch(X [][]float64, y []float64, grid []GridPoint, k int, epsilon float64, seed int64) (CVResult, []CVResult, error) {
	if len(grid) == 0 {
		return CVResult{}, nil, fmt.Errorf("svr: empty grid")
	}
	folds, err := KFold(len(X), k, seed)
	if err != nil {
		return CVResult{}, nil, err
	}
	splits := makeFoldSplits(X, y, folds)
	groups := groupByGamma(grid)

	type foldErr struct {
		sqSum float64
		cnt   int
	}
	errsByTask := make([]foldErr, len(grid)*len(splits))
	err = par.ForEach(len(groups)*len(splits), func(ti int) error {
		grp := &groups[ti/len(splits)]
		fi := ti % len(splits)
		s := &splits[fi]
		var warm []float64
		for _, gi := range grp.gridIdx {
			gp := grid[gi]
			m, err := TrainWarm(s.trX, s.trY, RBF{Gamma: gp.Gamma}, Params{C: gp.C, Epsilon: epsilon}, warm)
			if err != nil {
				return fmt.Errorf("svr: grid point %+v: %w", gp, err)
			}
			warm = m.beta
			var fe foldErr
			for _, i := range s.val {
				d := m.Predict(X[i]) - y[i]
				fe.sqSum += d * d
				fe.cnt++
			}
			errsByTask[gi*len(splits)+fi] = fe
		}
		return nil
	})
	if err != nil {
		return CVResult{}, nil, err
	}

	results := make([]CVResult, 0, len(grid))
	best := CVResult{RMSE: math.Inf(1)}
	for gi, gp := range grid {
		var sqSum float64
		var cnt int
		for fi := range splits {
			fe := errsByTask[gi*len(splits)+fi]
			sqSum += fe.sqSum
			cnt += fe.cnt
		}
		r := CVResult{Point: gp, RMSE: math.Sqrt(sqSum / float64(cnt))}
		results = append(results, r)
		if r.RMSE < best.RMSE {
			best = r
		}
	}
	return best, results, nil
}
