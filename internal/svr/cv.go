package svr

import (
	"fmt"
	"math"
	"math/rand"
)

// KFold returns k disjoint validation index sets covering 0..n-1,
// shuffled with the given seed. Fold sizes differ by at most one.
func KFold(n, k int, seed int64) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("svr: cannot split %d samples into %d folds", n, k)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds, nil
}

// GridPoint is one hyper-parameter combination of the search.
type GridPoint struct {
	Gamma float64 // RBF kernel coefficient
	C     float64
}

// PaperGrid returns the search grid. It brackets the paper's reported
// optimum (gamma = 1e-1, C = 1e6) the way a practitioner's log-spaced
// grid would (Sec. V-B2; the paper found grid search beat random search
// at this sample size).
func PaperGrid() []GridPoint {
	var grid []GridPoint
	for _, g := range []float64{1e-3, 1e-2, 1e-1, 1, 10} {
		for _, c := range []float64{1e2, 1e4, 1e6} {
			grid = append(grid, GridPoint{Gamma: g, C: c})
		}
	}
	return grid
}

// CVResult reports the cross-validated error of one grid point.
type CVResult struct {
	Point GridPoint
	RMSE  float64
}

// GridSearch selects the grid point minimizing k-fold cross-validated
// RMSE of an RBF epsilon-SVR on (X, y). X should be standardized.
// Returns the winner and the full result table, sorted as given in grid.
func GridSearch(X [][]float64, y []float64, grid []GridPoint, k int, epsilon float64, seed int64) (CVResult, []CVResult, error) {
	if len(grid) == 0 {
		return CVResult{}, nil, fmt.Errorf("svr: empty grid")
	}
	folds, err := KFold(len(X), k, seed)
	if err != nil {
		return CVResult{}, nil, err
	}
	results := make([]CVResult, 0, len(grid))
	best := CVResult{RMSE: math.Inf(1)}
	for _, gp := range grid {
		var sqSum float64
		var cnt int
		for _, val := range folds {
			inVal := map[int]bool{}
			for _, i := range val {
				inVal[i] = true
			}
			var trX [][]float64
			var trY []float64
			for i := range X {
				if !inVal[i] {
					trX = append(trX, X[i])
					trY = append(trY, y[i])
				}
			}
			m, err := Train(trX, trY, RBF{Gamma: gp.Gamma}, Params{C: gp.C, Epsilon: epsilon})
			if err != nil {
				return CVResult{}, nil, fmt.Errorf("svr: grid point %+v: %w", gp, err)
			}
			for _, i := range val {
				d := m.Predict(X[i]) - y[i]
				sqSum += d * d
				cnt++
			}
		}
		r := CVResult{Point: gp, RMSE: math.Sqrt(sqSum / float64(cnt))}
		results = append(results, r)
		if r.RMSE < best.RMSE {
			best = r
		}
	}
	return best, results, nil
}
