package svr

import (
	"fmt"
	"math"
)

// LinearModel is an ordinary-least-squares (optionally ridge-stabilized)
// linear regression — the baseline whose 23.81% relative latency error
// the paper contrasts with the RBF SVR (Sec. V-C).
type LinearModel struct {
	W []float64
	B float64
}

// FitLinear solves min ||Xw + b - y||^2 + ridge*||w||^2 by centered
// normal equations with Gaussian elimination. ridge = 0 gives plain OLS;
// a tiny ridge stabilizes collinear latency features.
func FitLinear(X [][]float64, y []float64, ridge float64) (*LinearModel, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("svr: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("svr: %d rows but %d targets", n, len(y))
	}
	if ridge < 0 {
		return nil, fmt.Errorf("svr: negative ridge %v", ridge)
	}
	d := len(X[0])
	// Center features and target so the intercept separates out.
	mx := make([]float64, d)
	for _, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("svr: ragged design matrix")
		}
		for j, v := range row {
			mx[j] += v
		}
	}
	for j := range mx {
		mx[j] /= float64(n)
	}
	var my float64
	for _, v := range y {
		my += v
	}
	my /= float64(n)

	// A = Xc^T Xc + ridge*I, rhs = Xc^T yc.
	A := make([][]float64, d)
	rhs := make([]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	for r, row := range X {
		yc := y[r] - my
		for i := 0; i < d; i++ {
			xi := row[i] - mx[i]
			rhs[i] += xi * yc
			for j := i; j < d; j++ {
				A[i][j] += xi * (row[j] - mx[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		A[i][i] += ridge
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}

	w, err := solve(A, rhs)
	if err != nil {
		return nil, err
	}
	b := my
	for j := range w {
		b -= w[j] * mx[j]
	}
	return &LinearModel{W: w, B: b}, nil
}

// Predict evaluates the linear model at x.
func (m *LinearModel) Predict(x []float64) float64 {
	s := m.B
	for j, w := range m.W {
		s += w * x[j]
	}
	return s
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// A and rhs.
func solve(A [][]float64, rhs []float64) ([]float64, error) {
	d := len(A)
	m := make([][]float64, d)
	for i := range m {
		m[i] = append(append([]float64(nil), A[i]...), rhs[i])
	}
	for col := 0; col < d; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < d; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, fmt.Errorf("svr: singular normal equations (column %d); add ridge", col)
		}
		m[col], m[p] = m[p], m[col]
		for r := col + 1; r < d; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= d; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	w := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		s := m[r][d]
		for c := r + 1; c < d; c++ {
			s -= m[r][c] * w[c]
		}
		w[r] = s / m[r][r]
	}
	return w, nil
}
