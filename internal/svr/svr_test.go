package svr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Gamma: 0.5}
	a := []float64{1, 2}
	b := []float64{3, -1}
	if got := k.Eval(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("K(a,a) = %v, want 1", got)
	}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Fatal("kernel not symmetric")
	}
	if v := k.Eval(a, b); v <= 0 || v >= 1 {
		t.Fatalf("K(a,b) = %v, want in (0,1)", v)
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {3, 300}, {5, 500}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var m, v float64
		for i := range Z {
			m += Z[i][j]
		}
		m /= 3
		for i := range Z {
			v += (Z[i][j] - m) * (Z[i][j] - m)
		}
		if math.Abs(m) > 1e-12 || math.Abs(v/3-1) > 1e-9 {
			t.Fatalf("column %d not standardized: mean %v var %v", j, m, v/3)
		}
	}
	if _, err := FitScaler(nil); err == nil {
		t.Fatal("empty scaler accepted")
	}
	if _, err := FitScaler([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged scaler accepted")
	}
}

func TestScalerConstantFeature(t *testing.T) {
	s, err := FitScaler([][]float64{{5, 1}, {5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	z := s.Transform([]float64{5, 1.5})
	if z[0] != 0 {
		t.Fatalf("constant feature should center to 0, got %v", z[0])
	}
}

func TestSVRFitsLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64()*4 - 2}
		X = append(X, x)
		y = append(y, 3*x[0]+1)
	}
	m, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 100, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1.5, 0, 1.5} {
		got := m.Predict([]float64{x})
		want := 3*x + 1
		if math.Abs(got-want) > 0.08 {
			t.Fatalf("f(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSVRFitsSine(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		x := float64(i) / 79 * 2 * math.Pi
		X = append(X, []float64{x})
		y = append(y, math.Sin(x))
	}
	m, err := Train(X, y, RBF{Gamma: 1.0}, Params{C: 1000, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i, x := range X {
		maxErr = math.Max(maxErr, math.Abs(m.Predict(x)-y[i]))
	}
	// epsilon-SVR should fit within roughly the tube width.
	if maxErr > 0.05 {
		t.Fatalf("max train error %v, want < 0.05", maxErr)
	}
	// And interpolate between samples.
	if got := m.Predict([]float64{1.0}); math.Abs(got-math.Sin(1.0)) > 0.05 {
		t.Fatalf("interp f(1.0) = %v, want %v", got, math.Sin(1.0))
	}
}

func TestSVRRespectsEpsilonTube(t *testing.T) {
	// With a wide tube and smooth data, most points need no support
	// vector: sparsity is the signature of epsilon-insensitivity.
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x := float64(i) / 10
		X = append(X, []float64{x})
		y = append(y, 0.1*x)
	}
	m, err := Train(X, y, RBF{Gamma: 0.3}, Params{C: 100, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sv := m.SupportVectors(); sv > 10 {
		t.Fatalf("wide tube kept %d support vectors, want few", sv)
	}
}

func TestSVRHugePaperC(t *testing.T) {
	// The paper's C = 1e6 must stay numerically stable and fit tightly.
	var X [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x := float64(i) / 39 * 3
		X = append(X, []float64{x})
		y = append(y, 1.5*x*x-x)
	}
	m, err := Train(X, y, RBF{Gamma: 0.1}, Params{C: 1e6, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if d := math.Abs(m.Predict(x) - y[i]); d > 0.15 {
			t.Fatalf("train residual %v at %v too large for C=1e6", d, x)
		}
	}
}

func TestSVRInputValidation(t *testing.T) {
	if _, err := Train(nil, nil, RBF{Gamma: 1}, Params{C: 1, Epsilon: 0.1}); err == nil {
		t.Fatal("empty training accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, RBF{Gamma: 1}, Params{C: 1, Epsilon: 0.1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, RBF{Gamma: 1}, Params{C: 1, Epsilon: 0.1}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1}, RBF{Gamma: 1}, Params{C: 0, Epsilon: 0.1}); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1}, RBF{Gamma: 1}, Params{C: 1, Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

// Property: the dual equality constraint holds after training.
func TestSVRDualFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = X[i][0] - 2*X[i][1] + 0.1*rng.NormFloat64()
		}
		m, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 10, Epsilon: 0.05})
		if err != nil {
			return false
		}
		var sum float64
		for _, b := range m.beta {
			if math.Abs(b) > 10+1e-9 {
				return false // box violated
			}
			sum += b
		}
		return math.Abs(sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearRegressionExact(t *testing.T) {
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 2*x[0] - 3*x[1] + 5
	}
	m, err := FitLinear(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.W[0]-2) > 1e-9 || math.Abs(m.W[1]+3) > 1e-9 || math.Abs(m.B-5) > 1e-9 {
		t.Fatalf("fit = %+v, want w=[2,-3] b=5", m)
	}
}

func TestLinearRegressionSingular(t *testing.T) {
	// Perfectly collinear features: OLS fails, ridge recovers.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := FitLinear(X, y, 0); err == nil {
		t.Fatal("singular OLS accepted")
	}
	m, err := FitLinear(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(m.Predict([]float64{5, 10}) - 5); d > 1e-3 {
		t.Fatalf("ridge prediction off by %v", d)
	}
}

func TestLinearCannotFitQuadratic(t *testing.T) {
	// The motivation for the RBF kernel: linear models leave large
	// residuals on curved responses.
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x := float64(i) / 10
		X = append(X, []float64{x})
		y = append(y, x*x)
	}
	lin, err := FitLinear(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	svr, err := Train(X, y, RBF{Gamma: 0.5}, Params{C: 1000, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var linErr, svrErr float64
	for i, x := range X {
		linErr += math.Abs(lin.Predict(x) - y[i])
		svrErr += math.Abs(svr.Predict(x) - y[i])
	}
	if svrErr*3 > linErr {
		t.Fatalf("RBF SVR (%v) not clearly better than linear (%v)", svrErr, linErr)
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(25, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("%d folds, want 10", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		if len(f) < 2 || len(f) > 3 {
			t.Fatalf("fold size %d, want 2 or 3", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 25 {
		t.Fatalf("folds cover %d indices, want 25", len(seen))
	}
	if _, err := KFold(5, 10, 1); err == nil {
		t.Fatal("more folds than samples accepted")
	}
	if _, err := KFold(5, 1, 1); err == nil {
		t.Fatal("single fold accepted")
	}
}

func TestGridSearchPrefersGoodGamma(t *testing.T) {
	// Data with a length scale of ~1 in standardized units: tiny or huge
	// gamma should lose to a moderate one.
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []float64
	for i := 0; i < 60; i++ {
		x := rng.NormFloat64()
		X = append(X, []float64{x})
		y = append(y, math.Sin(2*x)+0.02*rng.NormFloat64())
	}
	best, all, err := GridSearch(X, y, PaperGrid(), 10, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(PaperGrid()) {
		t.Fatalf("result table %d entries, want %d", len(all), len(PaperGrid()))
	}
	if best.Point.Gamma < 1e-2 {
		t.Fatalf("grid search picked gamma %v; too small for unit-scale data", best.Point.Gamma)
	}
	if best.RMSE > 0.2 {
		t.Fatalf("best CV RMSE %v implausibly high", best.RMSE)
	}
}

func TestGridSearchErrors(t *testing.T) {
	if _, _, err := GridSearch(nil, nil, nil, 10, 0.1, 1); err == nil {
		t.Fatal("empty grid accepted")
	}
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	if _, _, err := GridSearch(X, y, PaperGrid(), 10, 0.1, 1); err == nil {
		t.Fatal("k > n accepted")
	}
}
