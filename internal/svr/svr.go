package svr

import (
	"fmt"
	"math"
	"math/rand"
)

// Params are the epsilon-SVR hyper-parameters.
type Params struct {
	C       float64 // box constraint (regularization)
	Epsilon float64 // insensitive-tube half width, in target units
}

// Model is a trained epsilon-SVR.
type Model struct {
	kernel Kernel
	x      [][]float64 // support data (all training rows; zero-beta rows skipped at predict)
	beta   []float64
	b      float64
}

// Train fits an epsilon-SVR on (X, y) with the given kernel. X rows must
// share a length and y must match X. Inputs are retained by the model;
// callers should standardize features first (see Scaler).
func Train(X [][]float64, y []float64, kernel Kernel, p Params) (*Model, error) {
	return TrainWarm(X, y, kernel, p, nil)
}

// TrainWarm is Train warm-started from an initial dual vector beta0 —
// typically the solution at a smaller C on the same data, which stays
// feasible as the box widens. Grid search walks each gamma's C values
// in ascending order through this, so later grid points start near
// their optimum instead of at zero.
//
// beta0 is copied; it is used only if it is dual-feasible for the new
// box — every |beta0_i| <= C — since the solver's pairwise updates
// preserve whatever the starting point's coefficient sum is, and a
// clipped (or otherwise infeasible) start would silently converge to a
// solution violating the SVR constraints. A nil, mismatched-length or
// infeasible beta0 falls back to a cold start. Warm starts are
// deterministic: the same (inputs, beta0) always reaches the same
// model, because the solver's internal randomness is fixed-seeded.
func TrainWarm(X [][]float64, y []float64, kernel Kernel, p Params, beta0 []float64) (*Model, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("svr: empty training set")
	}
	if len(y) != n {
		return nil, fmt.Errorf("svr: %d rows but %d targets", n, len(y))
	}
	if p.C <= 0 || p.Epsilon < 0 {
		return nil, fmt.Errorf("svr: invalid params %+v", p)
	}
	d := len(X[0])
	for _, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("svr: ragged design matrix")
		}
	}

	// Precompute the kernel matrix; n is small for latency estimation.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := kernel.Eval(X[i], X[j])
			K[i][j] = v
			K[j][i] = v
		}
	}

	beta := make([]float64, n)
	f := make([]float64, n) // f_i = (K beta)_i
	if len(beta0) == n {
		feasible := true
		for _, b := range beta0 {
			if math.Abs(b) > p.C {
				feasible = false
				break
			}
		}
		if feasible {
			copy(beta, beta0)
			for i := 0; i < n; i++ {
				if beta[i] == 0 {
					continue
				}
				Ki := K[i]
				for k := 0; k < n; k++ {
					f[k] += beta[i] * Ki[k]
				}
			}
		}
	}

	// deltaD returns the dual-objective gain of beta_i += t, beta_j -= t.
	deltaD := func(i, j int, t float64) float64 {
		eta := K[i][i] + K[j][j] - 2*K[i][j]
		lin := (y[i] - f[i]) - (y[j] - f[j])
		gain := t*lin - 0.5*t*t*eta
		gain -= p.Epsilon * (math.Abs(beta[i]+t) - math.Abs(beta[i]) +
			math.Abs(beta[j]-t) - math.Abs(beta[j]))
		return gain
	}

	// bestStep maximizes deltaD over the feasible interval exactly, by
	// taking the clipped vertex of each smooth piece plus the kink
	// breakpoints. Candidates live in a fixed-size stack array — this
	// runs hundreds of times per sweep and must not allocate.
	bestStep := func(i, j int) (float64, float64) {
		lo := math.Max(-p.C-beta[i], beta[j]-p.C)
		hi := math.Min(p.C-beta[i], beta[j]+p.C)
		if lo >= hi {
			return 0, 0
		}
		eta := K[i][i] + K[j][j] - 2*K[i][j]
		if eta < 1e-12 {
			eta = 1e-12
		}
		var cands [8]float64
		cands[0], cands[1] = lo, hi
		nc := 2
		// Kinks where beta_i + t or beta_j - t change sign.
		for _, k := range [2]float64{-beta[i], beta[j]} {
			if k > lo && k < hi {
				cands[nc] = k
				nc++
			}
		}
		// Vertices of the four sign-region quadratics.
		base := (y[i] - f[i]) - (y[j] - f[j])
		for _, si := range [2]float64{-1, 1} {
			for _, sj := range [2]float64{-1, 1} {
				t := (base - p.Epsilon*(si-sj)) / eta
				if t > lo && t < hi {
					cands[nc] = t
					nc++
				}
			}
		}
		bt, bg := 0.0, 0.0
		for _, t := range cands[:nc] {
			if g := deltaD(i, j, t); g > bg {
				bg, bt = g, t
			}
		}
		return bt, bg
	}

	apply := func(i, j int, t float64) {
		beta[i] += t
		beta[j] -= t
		// K is symmetric, so walk rows i and j sequentially instead of
		// striding down column i and j of every row.
		Ki, Kj := K[i], K[j]
		for k := 0; k < n; k++ {
			f[k] += t * (Ki[k] - Kj[k])
		}
	}

	// Optimization loop: alternate greedy extreme-pair steps with full
	// random-pair sweeps until a sweep yields no meaningful gain.
	rng := rand.New(rand.NewSource(1))
	scale := 0.0
	for _, v := range y {
		scale += v * v
	}
	tol := 1e-10 * (scale + 1)
	maxSweeps := 400
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		improved := 0.0
		// Greedy step: pair the most-violating extremes by gradient.
		gi, gj := -1, -1
		var gmax, gmin float64 = math.Inf(-1), math.Inf(1)
		for k := 0; k < n; k++ {
			g := y[k] - f[k]
			if g > gmax {
				gmax, gi = g, k
			}
			if g < gmin {
				gmin, gj = g, k
			}
		}
		if gi != gj {
			if t, gain := bestStep(gi, gj); gain > 0 {
				apply(gi, gj, t)
				improved += gain
			}
		}
		// Randomized sweep over adjacent pairs of a fresh permutation.
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for k := 0; k+1 < n; k++ {
			i, j := perm[k], perm[k+1]
			if t, gain := bestStep(i, j); gain > 0 {
				apply(i, j, t)
				improved += gain
			}
		}
		if improved < tol {
			break
		}
	}

	m := &Model{kernel: kernel, x: X, beta: beta}
	m.b = bias(beta, f, y, p)
	return m, nil
}

// bias recovers the intercept from the KKT conditions: free support
// vectors (0 < |beta| < C) sit exactly on the epsilon tube boundary.
func bias(beta, f, y []float64, p Params) float64 {
	var sum float64
	var cnt int
	margin := p.C * 1e-8
	for i := range beta {
		switch {
		case beta[i] > margin && beta[i] < p.C-margin:
			sum += y[i] - f[i] - p.Epsilon
			cnt++
		case beta[i] < -margin && beta[i] > -p.C+margin:
			sum += y[i] - f[i] + p.Epsilon
			cnt++
		}
	}
	if cnt > 0 {
		return sum / float64(cnt)
	}
	// No free vectors (e.g. everything inside the tube): center the
	// residuals instead.
	for i := range y {
		sum += y[i] - f[i]
	}
	return sum / float64(len(y))
}

// Predict evaluates the regression function at x.
func (m *Model) Predict(x []float64) float64 {
	s := m.b
	for i, bi := range m.beta {
		if bi == 0 {
			continue
		}
		s += bi * m.kernel.Eval(m.x[i], x)
	}
	return s
}

// SupportVectors returns the number of training points with non-zero
// dual coefficients.
func (m *Model) SupportVectors() int {
	n := 0
	for _, b := range m.beta {
		if b != 0 {
			n++
		}
	}
	return n
}
