// Package svr implements epsilon-Support Vector Regression from scratch:
// the analytical latency model of Sec. V-B2. It provides the RBF kernel
// the paper selects (gamma = 1e-1, C = 1e6 tuned by 10-fold
// cross-validated grid search), a linear kernel, k-fold cross-validation
// with grid search, and the ordinary-least-squares baseline whose
// 23.81% error the paper contrasts with the SVR's 4.28%.
//
// The solver maximizes the standard epsilon-SVR dual in the
// beta_i = alpha_i - alpha_i* parametrization
//
//	D(beta) = -1/2 beta^T K beta + y^T beta - epsilon * ||beta||_1
//	s.t.     sum_i beta_i = 0,   |beta_i| <= C
//
// by exact two-coordinate ascent: each update moves a pair (i, j) along
// the constraint manifold (beta_i += t, beta_j -= t), maximizing the
// piecewise-quadratic objective in t exactly over its three smooth
// pieces. This is SMO-style optimization with an exact line search, well
// suited to the small design matrices latency estimation produces.
package svr

import (
	"fmt"
	"math"
)

// Kernel is a positive-semidefinite similarity function.
type Kernel interface {
	Eval(a, b []float64) float64
	String() string
}

// RBF is the radial-basis-function kernel exp(-gamma*||a-b||^2), the
// paper's choice for the analytical model.
type RBF struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

func (k RBF) String() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Linear is the dot-product kernel; an SVR over it is a (regularized)
// linear model, used in ablations.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func (Linear) String() string { return "linear" }

// Scaler standardizes features to zero mean and unit variance —
// essential for RBF kernels over features spanning many orders of
// magnitude (FLOPs vs layer counts).
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature statistics over the rows of X.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("svr: cannot fit scaler on empty data")
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("svr: ragged design matrix (%d vs %d columns)", len(row), d)
		}
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dlt := v - s.Mean[j]
			s.Std[j] += dlt * dlt
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1 // constant feature: pass through centered
		}
	}
	return s, nil
}

// Transform returns the standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row of X.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
