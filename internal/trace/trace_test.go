package trace

import (
	"encoding/json"
	"regexp"
	"testing"
	"time"
)

var idFormat = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestIDGenFormat(t *testing.T) {
	g := NewIDGen(42)
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if !idFormat.MatchString(id) {
			t.Fatalf("id %q is not 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q at iteration %d", id, i)
		}
		seen[id] = true
	}
}

func TestIDGenDeterministicSequence(t *testing.T) {
	a, b := NewIDGen(7), NewIDGen(7)
	for i := 0; i < 100; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, ga, gb)
		}
	}
	if NewIDGen(1).Next() == NewIDGen(2).Next() {
		t.Fatal("different seeds produced the same first id")
	}
}

func TestIDGenConcurrentUnique(t *testing.T) {
	g := NewIDGen(1)
	const workers, per = 8, 2000
	ch := make(chan []string, workers)
	for w := 0; w < workers; w++ {
		go func() {
			ids := make([]string, per)
			for i := range ids {
				ids[i] = g.Next()
			}
			ch <- ids
		}()
	}
	seen := make(map[string]bool, workers*per)
	for w := 0; w < workers; w++ {
		for _, id := range <-ch {
			if seen[id] {
				t.Fatalf("duplicate id %q under concurrency", id)
			}
			seen[id] = true
		}
	}
}

func TestTraceSpansAndFinish(t *testing.T) {
	start := time.Now()
	tr := Start("deadbeefdeadbeef", start)
	tr.SetRequest("lenet", "auto")
	tr.SetDevice("cpu0")

	tr.MarkAt(start.Add(2*time.Millisecond), "decode", "ok")
	tr.MarkZero("drain", "ok")
	tr.MarkZero("quarantine", "ok")
	tr.MarkAt(start.Add(3*time.Millisecond), "enqueue", "ok")
	// Reconstructed worker-side window.
	tr.SpanAt("exec", "", start.Add(3*time.Millisecond), start.Add(9*time.Millisecond))
	end := start.Add(10 * time.Millisecond)
	tr.MarkAt(end, "deliver", "ok")
	tr.Finish(200, end)

	if !tr.Done() {
		t.Fatal("trace not done after Finish")
	}
	if got := tr.DurMs(); got < 9.99 || got > 10.01 {
		t.Fatalf("DurMs = %v, want 10", got)
	}
	if dev := tr.DeviceOr("none"); dev != "cpu0" {
		t.Fatalf("DeviceOr = %q, want cpu0", dev)
	}

	var spans []Span
	tr.ForEach(func(s Span) { spans = append(spans, s) })
	wantStages := []string{"decode", "drain", "quarantine", "enqueue", "exec", "deliver"}
	if len(spans) != len(wantStages) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(wantStages), spans)
	}
	for i, st := range wantStages {
		if spans[i].Stage != st {
			t.Fatalf("span %d stage = %q, want %q", i, spans[i].Stage, st)
		}
	}
	if spans[1].DurMs != 0 || spans[2].DurMs != 0 {
		t.Fatalf("zero-marked gates have nonzero duration: %+v", spans[1:3])
	}
	if spans[4].DurMs < 5.99 || spans[4].DurMs > 6.01 {
		t.Fatalf("exec span dur = %v, want 6", spans[4].DurMs)
	}
	if spans[5].StartMs < 8.99 || spans[5].StartMs > 9.01 {
		t.Fatalf("deliver span starts at %v, want 9 (cursor advanced by SpanAt)", spans[5].StartMs)
	}

	v := tr.View(end)
	if v.ID != "deadbeefdeadbeef" || v.Status != 200 || !v.Done || len(v.Spans) != 6 {
		t.Fatalf("bad view: %+v", v)
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("view not marshalable: %v", err)
	}
}

func TestSpanAtClampsNegative(t *testing.T) {
	start := time.Now()
	tr := Start("0123456789abcdef", start)
	// A coalesced follower can join an execution that started before
	// its own trace did; both edges must clamp.
	tr.SpanAt("exec", "", start.Add(-5*time.Millisecond), start.Add(-1*time.Millisecond))
	var spans []Span
	tr.ForEach(func(s Span) { spans = append(spans, s) })
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].StartMs != 0 || spans[0].DurMs != 0 {
		t.Fatalf("negative window not clamped: %+v", spans[0])
	}
}

func TestTraceSpanCapDropsOverflow(t *testing.T) {
	tr := Start("0123456789abcdef", time.Now())
	for i := 0; i < MaxSpans+10; i++ {
		tr.MarkZero("gate", "ok")
	}
	n := 0
	tr.ForEach(func(Span) { n++ })
	if n != MaxSpans {
		t.Fatalf("span count = %d, want cap %d", n, MaxSpans)
	}
}

func TestLiveViewReportsElapsed(t *testing.T) {
	start := time.Now()
	tr := Start("0123456789abcdef", start)
	v := tr.View(start.Add(7 * time.Millisecond))
	if v.Done {
		t.Fatal("unfinished trace reported done")
	}
	if v.DurMs < 6.99 || v.DurMs > 7.01 {
		t.Fatalf("live DurMs = %v, want 7", v.DurMs)
	}
}

// TestRecycledTraceResets pins the pooling contract: a released record
// picked up by a later Start carries nothing over from its previous
// life — identity, spans, status, seq all reset.
func TestRecycledTraceResets(t *testing.T) {
	now := time.Now()
	tr := Start("1111111111111111", now)
	tr.SetRequest("net", "auto")
	tr.SetDevice("dev")
	tr.MarkZero("gate", "ok")
	tr.Finish(200, now.Add(time.Millisecond))
	tr.seq = 7

	tr.reset("2222222222222222", now.Add(time.Second))
	v := tr.View(now.Add(time.Second))
	if v.ID != "2222222222222222" {
		t.Fatalf("ID = %q after reset", v.ID)
	}
	if v.Name != "" || v.Target != "" || v.Device != "" {
		t.Fatalf("identity leaked across reset: %+v", v)
	}
	if v.Done || v.Status != 0 || len(v.Spans) != 0 || tr.seq != 0 {
		t.Fatalf("state leaked across reset: %+v seq=%d", v, tr.seq)
	}
	if tr.DurMs() != 0 {
		t.Fatalf("duration leaked across reset: %v", tr.DurMs())
	}
}
