package trace

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

func finished(id string, status int) *Trace {
	now := time.Now()
	tr := Start(id, now)
	tr.Finish(status, now)
	return tr
}

func TestRingCapRoundsUp(t *testing.T) {
	if r := NewRing(0); r != nil {
		t.Fatal("NewRing(0) should be nil (disabled)")
	}
	if r := NewRing(-5); r != nil {
		t.Fatal("NewRing(-5) should be nil (disabled)")
	}
	r := NewRing(10)
	if r.Cap() < 10 || r.Cap()%ringShards != 0 {
		t.Fatalf("Cap() = %d, want multiple of %d and >= 10", r.Cap(), ringShards)
	}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(16) // exactly 2 slots per shard
	const total = 100
	for i := 1; i <= total; i++ {
		r.Add(finished(fmt.Sprintf("%016x", i), 200))
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len = %d, want %d", r.Len(), r.Cap())
	}
	views := r.Snapshot(time.Now(), nil)
	if len(views) != r.Cap() {
		t.Fatalf("snapshot has %d entries, want %d", len(views), r.Cap())
	}
	// Single writer: retained set is exactly the newest Cap() adds, and
	// the snapshot is newest first.
	for i, v := range views {
		want := fmt.Sprintf("%016x", total-i)
		if v.ID != want {
			t.Fatalf("snapshot[%d].ID = %q, want %q", i, v.ID, want)
		}
	}
}

// TestRingEvictionOrderConcurrent pins the ring's exact retention
// invariant under concurrent writers: after N concurrent adds, the
// retained set is precisely the Cap() traces with the highest admission
// sequence numbers, and the snapshot lists them newest first — run
// with -race.
func TestRingEvictionOrderConcurrent(t *testing.T) {
	r := NewRing(64)
	const workers = 8
	const perWorker = 500
	total := workers * perWorker

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add(finished(fmt.Sprintf("%08x%08x", w, i), 200))
			}
		}(w)
	}
	wg.Wait()

	// Read the retained set straight out of the shards (in-package,
	// quiescent after the WaitGroup): the seqs must be exactly
	// (total-Cap, total] — displaced traces are recycled, so pointers
	// captured during the adds would alias and prove nothing.
	type entry struct {
		seq uint64
		id  string
	}
	kept := make([]entry, 0, r.Cap())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for slot, tr := range sh.buf {
			if tr == nil {
				continue
			}
			if int(tr.seq%ringShards) != i || (tr.seq/ringShards)%r.percap != uint64(slot) {
				t.Fatalf("seq %d filed in shard %d slot %d", tr.seq, i, slot)
			}
			kept = append(kept, entry{tr.seq, tr.id})
		}
		sh.mu.Unlock()
	}
	if len(kept) != r.Cap() {
		t.Fatalf("ring retains %d traces, want %d", len(kept), r.Cap())
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].seq > kept[j].seq })
	lo := uint64(total - r.Cap())
	for i, e := range kept {
		if want := uint64(total - i); e.seq != want {
			t.Fatalf("retained seq[%d] = %d, want %d (retention floor %d)", i, e.seq, want, lo)
		}
	}

	// The snapshot lists exactly that set, newest first.
	views := r.Snapshot(time.Now(), nil)
	if len(views) != len(kept) {
		t.Fatalf("snapshot has %d entries, want %d", len(views), len(kept))
	}
	for i, v := range views {
		if v.ID != kept[i].id {
			t.Fatalf("snapshot[%d].ID = %q, want %q (seq %d)", i, v.ID, kept[i].id, kept[i].seq)
		}
	}

	// One more add evicts exactly the oldest retained trace.
	sentinel := finished("ffffffffffffffff", 200)
	r.Add(sentinel)
	views = r.Snapshot(time.Now(), nil)
	if views[0].ID != "ffffffffffffffff" {
		t.Fatalf("newest add not first in snapshot: %q", views[0].ID)
	}
	if len(views) != r.Cap() {
		t.Fatalf("ring grew past cap: %d", len(views))
	}
	if last := views[len(views)-1].ID; last != kept[len(kept)-2].id {
		t.Fatalf("oldest retained = %q, want %q", last, kept[len(kept)-2].id)
	}
}

func TestRingSnapshotFilter(t *testing.T) {
	r := NewRing(32)
	for i := 1; i <= 10; i++ {
		status := 200
		if i%2 == 0 {
			status = 503
		}
		r.Add(finished(fmt.Sprintf("%016x", i), status))
	}
	shed := r.Snapshot(time.Now(), func(v View) bool { return v.Status == 503 })
	if len(shed) != 5 {
		t.Fatalf("filter kept %d, want 5", len(shed))
	}
	for _, v := range shed {
		if v.Status != 503 {
			t.Fatalf("filter leaked status %d", v.Status)
		}
	}
}

func TestLiveTable(t *testing.T) {
	l := NewLive()
	base := time.Now()
	var traces []*Trace
	for i := 0; i < 20; i++ {
		tr := Start(fmt.Sprintf("%016x", i), base.Add(time.Duration(i)*time.Millisecond))
		traces = append(traces, tr)
		l.Add(tr)
	}
	if l.Len() != 20 {
		t.Fatalf("Len = %d, want 20", l.Len())
	}
	views := l.Snapshot(base.Add(time.Second))
	if len(views) != 20 {
		t.Fatalf("snapshot has %d, want 20", len(views))
	}
	for i := 1; i < len(views); i++ {
		if views[i].StartUnixNs < views[i-1].StartUnixNs {
			t.Fatalf("live snapshot not oldest-first at %d", i)
		}
	}
	for _, tr := range traces[:15] {
		l.Remove(tr)
	}
	if l.Len() != 5 {
		t.Fatalf("Len after removes = %d, want 5", l.Len())
	}
}

func TestLiveTableConcurrent(t *testing.T) {
	l := NewLive()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := Start(fmt.Sprintf("%08x%08x", w, i), time.Now())
				l.Add(tr)
				if i%3 == 0 {
					l.Snapshot(time.Now())
				}
				l.Remove(tr)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 0 {
		t.Fatalf("Len = %d after balanced add/remove, want 0", l.Len())
	}
}
