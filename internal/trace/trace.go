// Package trace is the request-scoped tracing substrate of the serving
// stack: per-request records of timestamped stage spans, a bounded
// lock-sharded ring buffer of completed traces, and a sharded table of
// in-flight ones. Like internal/telemetry it is dependency-free
// (standard library only) and observability-only by construction: a
// Trace is a passive record — nothing in this package influences what
// any request returns.
//
// Concurrency model: a Trace has a single writer (the goroutine serving
// the request) but may be read at any time by the /debug/requests live
// dump, so every mutation and every read goes through the Trace's own
// mutex; the critical sections are tiny (append one span, copy one
// view). The Ring and Live containers shard their locks so concurrent
// request completions don't serialize on one mutex.
//
// Trace IDs are deterministic in format — exactly 16 lowercase hex
// characters — and deterministic in sequence for a fixed IDGen seed:
// the generator is a splitmix64 walk, so a replay with the same seed
// and admission order reproduces the same IDs. The walk is a bijection
// over the counter, so IDs never collide within a process.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a request: a name from the caller's stage
// vocabulary, an optional gate verdict ("hit", "shed", "leader", ...),
// and a [start, start+dur] window expressed in milliseconds relative to
// the trace's own start.
type Span struct {
	Stage   string  `json:"stage"`
	Verdict string  `json:"verdict,omitempty"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

// MaxSpans bounds a trace's span storage. The storage is inline (one
// allocation per trace, no append growth); marks beyond the bound are
// dropped rather than grown — a request path has a fixed number of
// stages, so hitting the cap means a plumbing bug, not load.
const MaxSpans = 24

// Trace is one request's record. Construct with Start; the owning
// goroutine marks stages as the request moves through them and calls
// Finish exactly once. All methods are safe against concurrent View
// readers.
type Trace struct {
	mu     sync.Mutex
	id     string
	start  time.Time
	cursor time.Time // end of the last recorded span: the next Mark's start

	name   string // request identity (network/graph name), set after decode
	target string // requested target ("", "auto", or a device name)
	device string // resolved device, set at routing

	status int
	durMs  float64
	done   bool

	nspans int
	spans  [MaxSpans]Span

	// seq is the ring admission order, written once by Ring.Add before
	// the trace is published into a shard (never read before that).
	seq uint64
}

// pool recycles Trace records. A Trace is ~1.2KB (the inline span
// array), which is real allocation and GC-scan pressure at one trace
// per request; recycling displaced ring entries keeps steady-state
// tracing allocation-free. reset leaves the spans array dirty — only
// spans[:nspans] is ever read.
var pool = sync.Pool{New: func() any { return new(Trace) }}

// Start begins a trace at now, reusing a released record when one is
// available. The id should come from an IDGen.
func Start(id string, now time.Time) *Trace {
	t := pool.Get().(*Trace)
	t.reset(id, now)
	return t
}

// Release returns a trace to the allocation pool. The caller must
// guarantee no goroutine still holds a reference — in the gateway that
// is a trace displaced from the ring (every read surface copies under
// the shard lock) or one finished with the ring disabled.
func Release(t *Trace) { pool.Put(t) }

// reset clears a recycled record back to Start state.
func (t *Trace) reset(id string, now time.Time) {
	t.mu.Lock()
	t.id, t.start, t.cursor = id, now, now
	t.name, t.target, t.device = "", "", ""
	t.status, t.durMs, t.done = 0, 0, false
	t.nspans, t.seq = 0, 0
	t.mu.Unlock()
}

// ID returns the trace's identifier.
func (t *Trace) ID() string { return t.id }

// SetRequest records the decoded request identity: the graph/network
// name and the raw requested target.
func (t *Trace) SetRequest(name, target string) {
	t.mu.Lock()
	t.name, t.target = name, target
	t.mu.Unlock()
}

// SetDevice records the resolved device once routing has picked one.
func (t *Trace) SetDevice(dev string) {
	t.mu.Lock()
	t.device = dev
	t.mu.Unlock()
}

// DeviceOr returns the resolved device, or fallback when the request
// never reached routing (decode errors, drain/quarantine refusals).
func (t *Trace) DeviceOr(fallback string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.device == "" {
		return fallback
	}
	return t.device
}

// Cursor returns the end timestamp of the last recorded span — the
// instant admission handed the request off, which is where queue-wait
// accounting starts.
func (t *Trace) Cursor() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cursor
}

// Mark records a span from the cursor to now (one clock read), advances
// the cursor, and returns the timestamp it read so callers can reuse it
// (Finish accepts it) instead of paying a second clock read.
func (t *Trace) Mark(stage, verdict string) time.Time {
	now := time.Now()
	t.MarkAt(now, stage, verdict)
	return now
}

// MarkAt is Mark with a caller-supplied clock read.
func (t *Trace) MarkAt(now time.Time, stage, verdict string) {
	t.mu.Lock()
	t.append(stage, verdict, t.cursor, now)
	if now.After(t.cursor) {
		t.cursor = now
	}
	t.mu.Unlock()
}

// MarkZero records a zero-duration span at the cursor without reading
// the clock — the admission gates decide in nanoseconds, and what
// matters about them is the verdict, not a duration below the clock's
// own resolution.
func (t *Trace) MarkZero(stage, verdict string) {
	t.mu.Lock()
	t.append(stage, verdict, t.cursor, t.cursor)
	t.mu.Unlock()
}

// SpanAt records a span with explicit boundaries — how the queue-wait
// and execution windows, measured on the worker goroutine and read back
// after delivery, are stitched into a waiter's trace. A start before
// the trace's own start or an end before the start is clamped rather
// than rendered negative (a coalesced follower can join an execution
// that began before it arrived). The cursor advances to end if later.
func (t *Trace) SpanAt(stage, verdict string, start, end time.Time) {
	if start.Before(t.start) {
		start = t.start
	}
	if end.Before(start) {
		end = start
	}
	t.mu.Lock()
	t.append(stage, verdict, start, end)
	if end.After(t.cursor) {
		t.cursor = end
	}
	t.mu.Unlock()
}

// append records one span; callers hold t.mu.
func (t *Trace) append(stage, verdict string, start, end time.Time) {
	if t.nspans >= MaxSpans {
		return
	}
	t.spans[t.nspans] = Span{
		Stage:   stage,
		Verdict: verdict,
		StartMs: float64(start.Sub(t.start)) / float64(time.Millisecond),
		DurMs:   float64(end.Sub(start)) / float64(time.Millisecond),
	}
	t.nspans++
}

// Finish seals the trace: total duration from start to now, final
// status. Call exactly once, after the last Mark (reuse Mark's returned
// timestamp as now).
func (t *Trace) Finish(status int, now time.Time) {
	t.mu.Lock()
	t.status = status
	t.durMs = float64(now.Sub(t.start)) / float64(time.Millisecond)
	t.done = true
	t.mu.Unlock()
}

// Done reports whether Finish has run.
func (t *Trace) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done
}

// DurMs returns the sealed total duration (0 before Finish).
func (t *Trace) DurMs() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.durMs
}

// ForEach calls fn for every recorded span, under the trace mutex.
// fn must not call back into the trace.
func (t *Trace) ForEach(fn func(Span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.nspans; i++ {
		fn(t.spans[i])
	}
}

// View is a JSON-marshalable copy of a trace, the wire form of
// /debug/trace and /debug/requests.
type View struct {
	ID          string  `json:"trace_id"`
	Name        string  `json:"name,omitempty"`
	Target      string  `json:"target,omitempty"`
	Device      string  `json:"device,omitempty"`
	Status      int     `json:"status,omitempty"`
	Done        bool    `json:"done"`
	StartUnixNs int64   `json:"start_unix_ns"`
	DurMs       float64 `json:"dur_ms"`
	Spans       []Span  `json:"spans"`
}

// View copies the trace under its mutex. For an in-flight trace
// (Done == false) DurMs is the elapsed time up to now, so the live dump
// shows how long each stuck request has been in flight.
func (t *Trace) View(now time.Time) View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{
		ID:          t.id,
		Name:        t.name,
		Target:      t.target,
		Device:      t.device,
		Status:      t.status,
		Done:        t.done,
		StartUnixNs: t.start.UnixNano(),
		DurMs:       t.durMs,
		Spans:       append([]Span(nil), t.spans[:t.nspans]...),
	}
	if !t.done {
		v.DurMs = float64(now.Sub(t.start)) / float64(time.Millisecond)
	}
	return v
}

// IDGen generates trace IDs: 16 lowercase hex characters, a splitmix64
// walk seeded once. Safe for concurrent use; IDs never collide within a
// generator (the walk is a bijection over the 64-bit counter).
type IDGen struct {
	state atomic.Uint64
}

// NewIDGen seeds a generator. A fixed seed reproduces the ID stream in
// admission order, keeping trace IDs as replayable as everything else
// derived from the planner seed.
func NewIDGen(seed uint64) *IDGen {
	g := &IDGen{}
	g.state.Store(mix(seed))
	return g
}

// Next returns the next ID.
func (g *IDGen) Next() string {
	z := mix(g.state.Add(0x9e3779b97f4a7c15))
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[z&0xf]
		z >>= 4
	}
	return string(b[:])
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
