package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ringShards is the lock-shard count for Ring. Eight shards keep
// concurrent completions from serializing on one mutex without
// inflating an idle ring's footprint.
const ringShards = 8

// Ring is a bounded, lock-sharded ring buffer of completed traces. Add
// assigns a global admission sequence number atomically, then files the
// trace into a shard keyed by that sequence, so the retained set is an
// exact invariant even under concurrent writers: after N adds, the ring
// holds precisely the Cap() most recent traces by admission order —
// nothing older survives, nothing newer is lost. A straggler whose add
// races a full wrap (its slot was already claimed by a trace a whole
// capacity newer) is dropped rather than allowed to resurrect stale
// data.
type Ring struct {
	seq    atomic.Uint64
	percap uint64 // slots per shard
	shards [ringShards]struct {
		mu  sync.Mutex
		buf []*Trace
	}
}

// NewRing makes a ring retaining the most recent capacity traces.
// Capacity is rounded up to a multiple of the shard count; values < 1
// are rejected by returning nil (callers gate on that to disable the
// ring entirely).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		return nil
	}
	per := (capacity + ringShards - 1) / ringShards
	r := &Ring{percap: uint64(per)}
	for i := range r.shards {
		r.shards[i].buf = make([]*Trace, per)
	}
	return r
}

// Cap returns the exact number of traces the ring retains.
func (r *Ring) Cap() int { return int(r.percap) * ringShards }

// Add files a completed trace and releases whichever trace the add
// retires — the displaced slot occupant, or t itself when it is a
// straggler racing a full wrap. Safe for concurrent use; the caller
// must not touch t after Add.
func (r *Ring) Add(t *Trace) {
	seq := r.seq.Add(1)
	t.seq = seq
	sh := &r.shards[seq%ringShards]
	slot := (seq / ringShards) % r.percap
	sh.mu.Lock()
	retired := t
	if old := sh.buf[slot]; old == nil || old.seq < seq {
		sh.buf[slot] = t
		retired = old
	}
	sh.mu.Unlock()
	if retired != nil {
		Release(retired)
	}
}

// Len returns the number of retained traces.
func (r *Ring) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, t := range sh.buf {
			if t != nil {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Snapshot copies every retained trace as a View, newest first (by
// admission order). keep filters: a nil keep takes everything.
func (r *Ring) Snapshot(now time.Time, keep func(View) bool) []View {
	type seqView struct {
		seq uint64
		v   View
	}
	all := make([]seqView, 0, r.Cap())
	for i := range r.shards {
		sh := &r.shards[i]
		// Views are copied under the shard lock: holding it pins every
		// trace in the shard, so a concurrent Add can never displace —
		// and recycle — a trace mid-copy. The sections stay short; this
		// is a debug surface.
		sh.mu.Lock()
		for _, t := range sh.buf {
			if t != nil {
				all = append(all, seqView{t.seq, t.View(now)})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	out := make([]View, 0, len(all))
	for _, sv := range all {
		if keep == nil || keep(sv.v) {
			out = append(out, sv.v)
		}
	}
	return out
}

// liveShards is the lock-shard count for Live.
const liveShards = 8

// Live is a sharded table of in-flight traces, keyed by trace ID —
// the backing store for the /debug/requests live dump.
type Live struct {
	shards [liveShards]struct {
		mu sync.Mutex
		m  map[string]*Trace
	}
}

// NewLive makes an empty table.
func NewLive() *Live {
	l := &Live{}
	for i := range l.shards {
		l.shards[i].m = make(map[string]*Trace)
	}
	return l
}

// shard hashes a trace ID (FNV-1a) to a shard index.
func (l *Live) shard(id string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int(h % liveShards)
}

// Add registers an in-flight trace.
func (l *Live) Add(t *Trace) {
	sh := &l.shards[l.shard(t.ID())]
	sh.mu.Lock()
	sh.m[t.ID()] = t
	sh.mu.Unlock()
}

// Remove drops a trace, normally at Finish time.
func (l *Live) Remove(t *Trace) {
	sh := &l.shards[l.shard(t.ID())]
	sh.mu.Lock()
	delete(sh.m, t.ID())
	sh.mu.Unlock()
}

// Len returns the number of in-flight traces.
func (l *Live) Len() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot copies every in-flight trace as a View, oldest first — the
// longest-stuck request is the one an operator wants at the top. Views
// are copied under the shard lock so a trace finishing (and possibly
// being recycled) concurrently can never be read mid-reuse.
func (l *Live) Snapshot(now time.Time) []View {
	var out []View
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for _, t := range sh.m {
			out = append(out, t.View(now))
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNs < out[j].StartUnixNs })
	return out
}
