package robot

import (
	"testing"
)

func fastAccurateVision() VisionModel {
	return VisionModel{
		Name:      "fast",
		LatencyMs: func() float64 { return 0.85 },
		Accuracy:  0.85,
	}
}

func slowVision() VisionModel {
	return VisionModel{
		Name:      "slow",
		LatencyMs: func() float64 { return 3.8 },
		Accuracy:  0.92,
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ActuationMs = cfg.ReachDurationMs
	if _, err := New(cfg, fastAccurateVision()); err == nil {
		t.Fatal("actuation >= reach accepted")
	}
	cfg = DefaultConfig()
	cfg.DecisionThreshold = 1.5
	if _, err := New(cfg, fastAccurateVision()); err == nil {
		t.Fatal("bad threshold accepted")
	}
	cfg = DefaultConfig()
	if _, err := New(cfg, VisionModel{Accuracy: 0.8}); err == nil {
		t.Fatal("nil latency sampler accepted")
	}
	if _, err := New(cfg, VisionModel{LatencyMs: func() float64 { return 1 }, Accuracy: 0}); err == nil {
		t.Fatal("zero accuracy accepted")
	}
}

func TestFastVisionMeetsDeadlines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	r, err := New(cfg, fastAccurateVision())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.RunTrials(50)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MissRate != 0 {
		t.Fatalf("fast vision missed %.2f of frames", sum.MissRate)
	}
	if sum.DecisionRate < 0.9 {
		t.Fatalf("decision rate %.2f too low with working vision", sum.DecisionRate)
	}
	if sum.SuccessRate < 0.7 {
		t.Fatalf("success rate %.2f too low with accurate fused pipeline", sum.SuccessRate)
	}
	if sum.MeanDecisionMs <= 0 || sum.MeanDecisionMs > cfg.ReachDurationMs {
		t.Fatalf("mean decision time %.1f out of range", sum.MeanDecisionMs)
	}
}

func TestSlowVisionMissesEveryFrame(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 2
	r, err := New(cfg, slowVision())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.RunTrials(50)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MissRate != 1 {
		t.Fatalf("3.8 ms inferences should miss every 0.9 ms budget; miss rate %.2f", sum.MissRate)
	}
	// EMG-only fusion still works sometimes but clearly worse.
	fast, _ := New(DefaultConfig(), fastAccurateVision())
	cfgF := DefaultConfig()
	cfgF.Seed = 2
	fast, _ = New(cfgF, fastAccurateVision())
	fsum, err := fast.RunTrials(50)
	if err != nil {
		t.Fatal(err)
	}
	if sum.SuccessRate >= fsum.SuccessRate {
		t.Fatalf("slow vision (%.2f) should underperform fast vision (%.2f)",
			sum.SuccessRate, fsum.SuccessRate)
	}
	// Note: MeanFusedSim is measured at decision time, so early-stopping
	// confident trials can make it non-monotone in vision quality; the
	// success-rate comparison above is the meaningful one.
}

func TestMoreAccurateVisionImprovesFusedSimilarity(t *testing.T) {
	mk := func(acc float64) Summary {
		cfg := DefaultConfig()
		cfg.Seed = 3
		r, err := New(cfg, VisionModel{
			Name:      "v",
			LatencyMs: func() float64 { return 0.8 },
			Accuracy:  acc,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.RunTrials(60)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	lo := mk(0.62)
	hi := mk(0.90)
	if hi.MeanFusedSim <= lo.MeanFusedSim {
		t.Fatalf("accuracy 0.90 fused sim %.3f not above accuracy 0.62's %.3f",
			hi.MeanFusedSim, lo.MeanFusedSim)
	}
	if hi.SuccessRate < lo.SuccessRate {
		t.Fatalf("success rate should not drop with better vision: %.2f vs %.2f",
			hi.SuccessRate, lo.SuccessRate)
	}
}

func TestRunTrialValidation(t *testing.T) {
	cfg := DefaultConfig()
	r, err := New(cfg, fastAccurateVision())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunTrial(99, []float64{1, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad grasp accepted")
	}
	if _, err := r.RunTrials(0); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	mk := func() Summary {
		cfg := DefaultConfig()
		cfg.Seed = 9
		r, _ := New(cfg, fastAccurateVision())
		s, _ := r.RunTrials(20)
		return s
	}
	if mk() != mk() {
		t.Fatal("same seed produced different summaries")
	}
}
