// Package robot simulates the robotic prosthetic hand's control loop
// (Sec. III-A, Fig. 2): camera frames arrive at a fixed rate, each is
// preprocessed and classified by the visual network under a per-frame
// deadline, EMG predictions tick continuously, and fused evidence must
// reach a confident decision before the hand contacts the object so the
// actuation can form the grasp in time.
//
// This is the application context that produces the paper's 0.9 ms
// visual-classifier deadline and that examples/prosthetichand drives
// end to end with NetCut-selected networks.
package robot

import (
	"fmt"
	"math/rand"

	"netcut/internal/emg"
	"netcut/internal/fusion"
	"netcut/internal/hands"
	"netcut/internal/metric"
)

// Config describes the control loop timing and fusion policy.
type Config struct {
	CameraPeriodMs    float64 // frame interval (e.g. 33.3 for 30 fps)
	PreprocessMs      float64 // per-frame preprocessing before inference
	VisionDeadlineMs  float64 // per-frame inference budget (paper: 0.9)
	ReachDurationMs   float64 // reach start to object contact
	ActuationMs       float64 // time the hand needs to form the grasp
	DecisionThreshold float64 // fused confidence required to commit
	EMGWeight         float64 // fusion weight of each EMG prediction
	VisionWeight      float64 // fusion weight of each vision prediction
	// EMGConfusionProb is the chance a reach event suffers a systematic
	// EMG mislabel (electrode shift, fatigue): the whole trial's EMG
	// stream then points at a wrong grasp. This is the "EMG alone lacks
	// robustness" failure mode that makes the visual classifier
	// necessary (Sec. III-A). Negative disables; 0 uses the default.
	EMGConfusionProb float64
	Seed             int64
}

// DefaultConfig returns control-loop constants consistent with the
// paper's narrative: a 30 fps palm camera, a 0.9 ms inference budget
// and a sub-second reach.
func DefaultConfig() Config {
	return Config{
		CameraPeriodMs:    33.3,
		PreprocessMs:      4.0,
		VisionDeadlineMs:  0.9,
		ReachDurationMs:   900,
		ActuationMs:       350,
		DecisionThreshold: 0.80,
		EMGWeight:         0.35,
		VisionWeight:      1.0,
		EMGConfusionProb:  0.25,
	}
}

func (c *Config) emgConfusion() float64 {
	switch {
	case c.EMGConfusionProb < 0:
		return 0
	case c.EMGConfusionProb == 0:
		return 0.25
	default:
		return c.EMGConfusionProb
	}
}

func (c *Config) validate() error {
	if c.CameraPeriodMs <= 0 || c.ReachDurationMs <= 0 || c.ActuationMs < 0 {
		return fmt.Errorf("robot: invalid timing config %+v", *c)
	}
	if c.ActuationMs >= c.ReachDurationMs {
		return fmt.Errorf("robot: actuation window %.1f ms leaves no decision time in a %.1f ms reach",
			c.ActuationMs, c.ReachDurationMs)
	}
	if c.DecisionThreshold <= 0 || c.DecisionThreshold > 1 {
		return fmt.Errorf("robot: decision threshold %v out of (0,1]", c.DecisionThreshold)
	}
	return nil
}

// VisionModel abstracts the deployed visual classifier: a latency
// sampler (per-inference, milliseconds) and an accuracy level (mean
// angular similarity on the grasp task) that shapes its outputs.
type VisionModel struct {
	Name string
	// LatencyMs samples one inference latency.
	LatencyMs func() float64
	// Accuracy is the retrained angular-similarity accuracy.
	Accuracy float64
}

// TrialResult is the outcome of one reach event.
type TrialResult struct {
	Grasp          int
	Decided        bool
	Decision       int
	Correct        bool
	DecisionTimeMs float64
	FramesSeen     int
	FramesUsed     int // vision predictions that met the deadline
	DeadlineMisses int
	FusedSim       float64 // angular similarity of fused dist vs label
}

// Summary aggregates trials.
type Summary struct {
	Trials         int
	SuccessRate    float64 // decided in time and correct
	DecisionRate   float64 // decided in time at all
	MissRate       float64 // fraction of frames whose inference was late
	MeanDecisionMs float64
	MeanFusedSim   float64
}

// Robot simulates reach events for one deployed vision model.
type Robot struct {
	cfg    Config
	vision VisionModel
	emg    *emg.Classifier
	rng    *rand.Rand
}

// New builds a Robot; the EMG classifier is constructed from the same
// seed so runs are reproducible.
func New(cfg Config, vision VisionModel) (*Robot, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if vision.LatencyMs == nil {
		return nil, fmt.Errorf("robot: vision model needs a latency sampler")
	}
	if vision.Accuracy <= 0 || vision.Accuracy > 1 {
		return nil, fmt.Errorf("robot: vision accuracy %v out of (0,1]", vision.Accuracy)
	}
	return &Robot{
		cfg:    cfg,
		vision: vision,
		emg:    emg.New(emg.Config{Seed: cfg.Seed + 1}),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// visionPredict synthesizes a vision output whose expected angular
// similarity against the label matches the model's accuracy: with
// probability tied to the accuracy it emits a sharpened version of the
// label, otherwise a random distribution.
func (r *Robot) visionPredict(label []float64) []float64 {
	const simGood, simBad = 0.97, 0.55
	p := (r.vision.Accuracy - simBad) / (simGood - simBad)
	if p < 0.02 {
		p = 0.02
	}
	if p > 0.98 {
		p = 0.98
	}
	out := make([]float64, len(label))
	if r.rng.Float64() < p {
		for i, v := range label {
			out[i] = v*v + 1e-3 // sharpen
		}
	} else {
		for i := range out {
			out[i] = r.rng.Float64()
		}
	}
	return metric.Normalize(out)
}

// RunTrial simulates one reach event toward an object whose intended
// grasp distribution is the given soft label.
func (r *Robot) RunTrial(grasp int, label []float64) (TrialResult, error) {
	if grasp < 0 || grasp >= hands.NumGrasps {
		return TrialResult{}, fmt.Errorf("robot: unknown grasp %d", grasp)
	}
	res := TrialResult{Grasp: grasp, Decision: -1}
	acc := fusion.NewAccumulator(hands.NumGrasps)
	decideBy := r.cfg.ReachDurationMs - r.cfg.ActuationMs

	// Systematic EMG failure for this trial: the stream points at a
	// wrong grasp for the whole reach.
	emgGrasp := grasp
	if r.rng.Float64() < r.cfg.emgConfusion() {
		emgGrasp = (grasp + 1 + r.rng.Intn(hands.NumGrasps-1)) % hands.NumGrasps
	}

	for t := r.cfg.CameraPeriodMs; t <= r.cfg.ReachDurationMs; t += r.cfg.CameraPeriodMs {
		// EMG ticks once per frame interval.
		ed, err := r.emg.Predict(emgGrasp)
		if err != nil {
			return TrialResult{}, err
		}
		if err := acc.Add(ed, r.cfg.EMGWeight); err != nil {
			return TrialResult{}, err
		}

		// Vision processes the frame under its per-frame budget.
		res.FramesSeen++
		lat := r.vision.LatencyMs()
		if lat <= r.cfg.VisionDeadlineMs {
			res.FramesUsed++
			vd := r.visionPredict(label)
			if err := acc.Add(vd, r.cfg.VisionWeight); err != nil {
				return TrialResult{}, err
			}
		} else {
			res.DeadlineMisses++
		}

		frameDone := t + r.cfg.PreprocessMs + lat
		if frameDone > decideBy {
			continue // too late for this evidence to drive actuation
		}
		if cls, ok := acc.Decide(r.cfg.DecisionThreshold); ok {
			res.Decided = true
			res.Decision = cls
			res.DecisionTimeMs = frameDone
			break
		}
	}
	res.FusedSim = fusion.Similarity(acc.Distribution(), label)
	if res.Decided {
		res.Correct = res.Decision == argmax(label)
	}
	return res, nil
}

// RunTrials simulates n reach events over objects cycling through the
// grasp classes with fresh probabilistic labels.
func (r *Robot) RunTrials(n int) (Summary, error) {
	if n <= 0 {
		return Summary{}, fmt.Errorf("robot: need at least one trial")
	}
	ds := hands.Generate(hands.Config{N: n, Seed: r.cfg.Seed + 7})
	var sum Summary
	var decMs, fused []float64
	var frames, misses int
	for i := 0; i < n; i++ {
		_, label := ds.Example(i)
		tr, err := r.RunTrial(i%hands.NumGrasps, label)
		if err != nil {
			return Summary{}, err
		}
		sum.Trials++
		if tr.Decided {
			sum.DecisionRate++
			decMs = append(decMs, tr.DecisionTimeMs)
			if tr.Correct {
				sum.SuccessRate++
			}
		}
		fused = append(fused, tr.FusedSim)
		frames += tr.FramesSeen
		misses += tr.DeadlineMisses
	}
	sum.SuccessRate /= float64(n)
	sum.DecisionRate /= float64(n)
	if frames > 0 {
		sum.MissRate = float64(misses) / float64(frames)
	}
	sum.MeanDecisionMs = metric.Mean(decMs)
	sum.MeanFusedSim = metric.Mean(fused)
	return sum, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
