package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeFamilies(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, fam := range []string{
		"netcut_runtime_goroutines",
		"netcut_runtime_heap_bytes",
		"netcut_runtime_gc_pause_p99_ms",
		"netcut_runtime_uptime_seconds",
		"netcut_build_info",
	} {
		if !strings.Contains(out, "\n"+fam) && !strings.HasPrefix(out, fam) {
			t.Fatalf("scrape missing family %s:\n%s", fam, out)
		}
	}
	if !strings.Contains(out, `go_version="`+runtime.Version()+`"`) {
		t.Fatalf("build_info missing go_version label:\n%s", out)
	}
	if !strings.Contains(out, "netcut_build_info{") {
		t.Fatal("build_info has no labels")
	}
}

func TestRuntimeGaugesSane(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	snap := r.Snapshot()
	vals := map[string]float64{}
	for name, v := range snap {
		if f, ok := v.(float64); ok {
			vals[name] = f
		}
	}
	if vals["netcut_runtime_goroutines"] < 1 {
		t.Fatalf("goroutines = %v, want >= 1", vals["netcut_runtime_goroutines"])
	}
	if vals["netcut_runtime_heap_bytes"] <= 0 {
		t.Fatalf("heap_bytes = %v, want > 0", vals["netcut_runtime_heap_bytes"])
	}
	if vals["netcut_runtime_uptime_seconds"] < 0 {
		t.Fatalf("uptime = %v, want >= 0", vals["netcut_runtime_uptime_seconds"])
	}
	if vals["netcut_runtime_gc_pause_p99_ms"] < 0 {
		t.Fatalf("gc pause p99 = %v, want >= 0", vals["netcut_runtime_gc_pause_p99_ms"])
	}
}

func TestGCPauseP99Conservative(t *testing.T) {
	var ms runtime.MemStats
	if got := GCPauseP99(&ms); got != 0 {
		t.Fatalf("p99 with no GCs = %v, want 0", got)
	}
	// Below 100 samples the max must be reported (over-report, never
	// under-report).
	ms.NumGC = 5
	ms.PauseNs[0], ms.PauseNs[1], ms.PauseNs[2], ms.PauseNs[3], ms.PauseNs[4] =
		1e6, 2e6, 3e6, 4e6, 9e6
	if got := GCPauseP99(&ms); got != 9 {
		t.Fatalf("p99 with 5 samples = %v, want max 9", got)
	}
	// With a full window the p99 sits at or above the 99th percentile.
	ms.NumGC = 256
	for i := range ms.PauseNs {
		ms.PauseNs[i] = uint64(i+1) * 1e5 // 0.1ms .. 25.6ms
	}
	got := GCPauseP99(&ms)
	if got < 25.3 || got > 25.6 {
		t.Fatalf("p99 over full window = %v, want in [25.3, 25.6]", got)
	}
}
