package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("reqs_total", ""); again != c {
		t.Fatal("re-registering a counter returned a different instance")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", g.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestRegistryRejectsUnsafeNames(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("name with spaces accepted")
		}
	}()
	r.Counter("bad name", "")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", "latency", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 111.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// p50 of 6 observations: rank 3 falls in the (1,2] bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	// The +Inf observation reports the tracked overflow max — finite
	// and conservative, never an underestimating clamp to the last
	// bound.
	if q := h.Quantile(1.0); q != 100 {
		t.Fatalf("p100 = %v, want the overflow max 100", q)
	}
}

func TestHistogramEmptyQuantileIsZero(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_ms", "", nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", q)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees").Add(2)
	r.Gauge("a_gauge", "").Set(1.25)
	r.Histogram("h_ms", "hist", []float64{1, 2}).Observe(1.5)
	r.CounterFunc("c_sampled_total", "", func() uint64 { return 7 })
	r.GaugeFunc("d_sampled", "", func() float64 { return 9 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge 1.25\n",
		"# HELP b_total bees\n# TYPE b_total counter\nb_total 2\n",
		"# TYPE c_sampled_total counter\nc_sampled_total 7\n",
		"# TYPE d_sampled gauge\nd_sampled 9\n",
		"h_ms_bucket{le=\"1\"} 0\n",
		"h_ms_bucket{le=\"2\"} 1\n",
		"h_ms_bucket{le=\"+Inf\"} 1\n",
		"h_ms_sum 1.5\nh_ms_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a_gauge before b_total before c before d before h.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_sampled") &&
		strings.Index(out, "d_sampled") < strings.Index(out, "h_ms")) {
		t.Fatalf("series not sorted:\n%s", out)
	}
}

func TestSnapshotIsJSONMarshalable(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(3)
	r.Histogram("h_ms", "", []float64{1, 2, 4}).Observe(1.5)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["n_total"].(float64) != 3 {
		t.Fatalf("snapshot n_total = %v", m["n_total"])
	}
	h := m["h_ms"].(map[string]any)
	if h["count"].(float64) != 1 {
		t.Fatalf("snapshot histogram count = %v", h["count"])
	}
}

// TestConcurrentWrites is the -race probe: many goroutines hammer every
// metric kind while a reader scrapes.
func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ms", "", nil)
	var wg sync.WaitGroup
	const workers, loops = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				// Re-registration from every goroutine must hand back
				// the one shared instance, atomically with scrapes.
				if r.Counter("c_total", "") != c {
					t.Error("concurrent Counter registration returned a different instance")
					return
				}
				r.CounterFunc("cf_total", "", func() uint64 { return uint64(w) })
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(w) + 0.1)
				if i%100 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*loops {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*loops)
	}
	if h.Count() != workers*loops {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*loops)
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	dev := func(name string) []Label { return []Label{{Key: "device", Value: name}} }
	r.CounterWith("exec_total", "executions", dev("sim-xavier")).Add(3)
	r.CounterWith("exec_total", "executions", dev("sim-server-gpu")).Add(5)
	r.HistogramWith("lat_ms", "latency", []float64{1, 2}, dev("sim-xavier")).Observe(1.5)
	r.GaugeFuncWith("occ", "", dev("sim-xavier"), func() float64 { return 4 })

	// Same (name, labels) returns the same series.
	if got := r.CounterWith("exec_total", "executions", dev("sim-xavier")).Value(); got != 3 {
		t.Fatalf("re-registration did not return the existing series: %d", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"exec_total{device=\"sim-server-gpu\"} 5\n",
		"exec_total{device=\"sim-xavier\"} 3\n",
		"lat_ms_bucket{device=\"sim-xavier\",le=\"2\"} 1\n",
		"lat_ms_sum{device=\"sim-xavier\"} 1.5\n",
		"lat_ms_count{device=\"sim-xavier\"} 1\n",
		"occ{device=\"sim-xavier\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per metric family, adjacent label sets.
	if strings.Count(out, "# TYPE exec_total counter") != 1 {
		t.Fatalf("TYPE not deduplicated per family:\n%s", out)
	}

	snap := r.Snapshot()
	if snap[`exec_total{device="sim-server-gpu"}`] != uint64(5) {
		t.Fatalf("snapshot missing labeled counter: %v", snap)
	}

	// Escaping: quotes and backslashes in label values must not break
	// the exposition line.
	r2 := NewRegistry()
	r2.CounterWith("esc_total", "", []Label{{Key: "device", Value: `a"b\c`}}).Inc()
	sb.Reset()
	if err := r2.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{device="a\"b\\c"} 1`) {
		t.Fatalf("label escaping broken:\n%s", sb.String())
	}
}

func TestLabeledKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("x_total", "", []Label{{Key: "device", Value: "a"}})
	defer func() {
		if recover() == nil {
			t.Fatal("gauge under a counter family did not panic")
		}
	}()
	r.GaugeWith("x_total", "", []Label{{Key: "device", Value: "b"}})
}

// TestHistogramOverflowQuantileConservative pins the +Inf-bucket fix:
// when observations drift past the last finite bound, a quantile that
// lands in the overflow mass must report the largest overflowed
// observation (an upper bound on the truth), not clamp to the last
// bound and underestimate — budget shedding admits against this number.
func TestHistogramOverflowQuantileConservative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("overflow_ms", "", []float64{1, 2})
	for _, v := range []float64{100, 200, 300} {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := h.Quantile(q); got != 300 {
			t.Fatalf("Quantile(%v) = %v with all samples overflowed; want max observation 300", q, got)
		}
	}
	if n := h.OverflowCount(); n != 3 {
		t.Fatalf("OverflowCount = %d; want 3", n)
	}
	// Mixed mass: quantiles inside finite buckets keep the interpolated
	// estimate; only the overflow tail reports the tracked max.
	h2 := r.Histogram("overflow_mixed_ms", "", []float64{1, 2})
	for _, v := range []float64{0.5, 0.5, 0.5, 50} {
		h2.Observe(v)
	}
	if got := h2.Quantile(0.5); got >= 1 {
		t.Fatalf("Quantile(0.5) = %v; want an interpolated value inside the first bucket", got)
	}
	if got := h2.Quantile(0.99); got != 50 {
		t.Fatalf("Quantile(0.99) = %v with an overflowed tail; want 50", got)
	}
	if math.IsInf(h2.Quantile(0.99), 1) {
		t.Fatal("overflow quantile must stay finite")
	}
}

// TestPrometheusLabelEscaping pins the text-exposition escaping rules:
// backslashes, double quotes, and newlines in label values must be
// escaped exactly as \\, \", and \n — a raw newline would split the
// sample line and corrupt the whole scrape.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("esc_total", "escaping fixture", []Label{
		{Key: "quote", Value: `say "hi"`},
		{Key: "slash", Value: `a\b`},
		{Key: "newline", Value: "line1\nline2"},
	}).Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	want := `esc_total{quote="say \"hi\"",slash="a\\b",newline="line1\nline2"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped sample line missing.\nwant substring: %s\ngot:\n%s", want, out)
	}
	// No label value may leak a raw newline into the exposition: every
	// line must start with a metric name or a # comment.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line (raw newline leaked?): %q", line)
		}
	}
}

// TestPrometheusLabelEscapingRoundTrip checks that two label values
// that differ only in escapable characters stay distinct series.
func TestPrometheusLabelEscapingRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("pair_total", "", []Label{{Key: "v", Value: "a\nb"}}).Add(1)
	r.CounterWith("pair_total", "", []Label{{Key: "v", Value: `a\nb`}}).Add(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `pair_total{v="a\nb"} 1`) {
		t.Fatalf("newline-valued series missing:\n%s", out)
	}
	if !strings.Contains(out, `pair_total{v="a\\nb"} 2`) {
		t.Fatalf("literal-backslash series missing:\n%s", out)
	}
}
