// Package telemetry is the dependency-free metrics substrate of the
// serving stack: a Registry of named counters, gauges and histograms
// that the gateway exposes in Prometheus text format at /metrics and as
// JSON at /debug/stats.
//
// Design constraints, in order:
//
//   - No dependencies beyond the standard library: the repository bakes
//     in no metrics client, and the measurement pipeline must stay
//     importable from every layer (device, profiler, trim, serve) without
//     a dependency cycle, so this package imports nothing from netcut.
//   - Hot-path writes are lock-free: Counter.Inc, Gauge.Set and
//     Histogram.Observe are single atomic operations, cheap enough to
//     sit on the planner's request path without showing up in profiles.
//   - Reads are consistent enough for operations, not transactions: a
//     scrape observes each series atomically but the set of series
//     mid-scrape, like every Prometheus exporter.
//   - Output order is deterministic (sorted by name), so scrapes diff
//     cleanly and the gateway's golden assertions can pin format.
//
// Sampled series: CounterFunc and GaugeFunc register callbacks read at
// scrape time, which is how the LRU cache layers surface their existing
// Stats counters without double-counting writes.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets, plus a running
// count and sum. Bounds are upper-inclusive bucket edges in ascending
// order; observations above the last bound land in the implicit +Inf
// bucket. All writes are atomic per field: a concurrent scrape may see a
// count that is ahead of the buckets by in-flight observations, which is
// the standard Prometheus histogram relaxation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// maxBits is the float64 bits of the largest observation that
	// landed in the +Inf bucket (0 until one does). Quantile reads it
	// so overflow mass reports a conservative finite value instead of
	// clamping to the last bound and underestimating.
	maxBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if i == len(h.bounds) {
		// Overflow: track the max so quantiles landing here stay
		// honest. Latencies are non-negative, so the bit patterns
		// order like the floats and a CAS max loop suffices.
		for {
			old := h.maxBits.Load()
			if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
				break
			}
		}
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket containing it, the same estimate
// Prometheus's histogram_quantile computes. It returns 0 before any
// observation. The estimate is always finite: when the quantile lands
// in the +Inf bucket it reports the largest overflowed observation —
// conservative (an upper bound on the true quantile), so admission
// control that sheds against a latency quantile fails safe instead of
// underestimating a distribution that drifted past the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			hi := h.upper(i)
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if math.IsInf(hi, 1) {
				return h.overflowMax()
			}
			return lo + (hi-lo)*((rank-seen)/n)
		}
		seen += n
	}
	return h.bounds[len(h.bounds)-1]
}

// overflowMax is the largest observation that landed in the +Inf
// bucket, falling back to the last finite bound if a concurrent scrape
// races the max update (the count can momentarily lead the max).
func (h *Histogram) overflowMax() float64 {
	if m := math.Float64frombits(h.maxBits.Load()); m > h.bounds[len(h.bounds)-1] {
		return m
	}
	return h.bounds[len(h.bounds)-1]
}

// OverflowCount returns how many observations exceeded the last finite
// bound — the +Inf bucket's population, surfaced so operators can tell
// when a histogram's bucket layout no longer covers its distribution.
func (h *Histogram) OverflowCount() uint64 {
	return h.counts[len(h.bounds)].Load()
}

func (h *Histogram) upper(i int) float64 {
	if i < len(h.bounds) {
		return h.bounds[i]
	}
	return math.Inf(1)
}

// LatencyBuckets is the default bucket layout for latency-in-
// milliseconds histograms: 24 exponential edges from 10 µs to ~84 s.
func LatencyBuckets() []float64 {
	b := make([]float64, 24)
	v := 0.01
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// kind discriminates registered series for rendering.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

type series struct {
	kind        kind
	base        string // metric name without labels
	labels      string // rendered label pairs, without braces ("" = unlabeled)
	help        string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFunc func() uint64
	gaugeFunc   func() float64
}

// A Label is one Prometheus label pair attached to a series. The
// multi-device planner pool registers one instance of each planner and
// cache series per target, distinguished by a device label.
type Label struct{ Key, Value string }

// renderLabels renders label pairs in the given order (no sorting: the
// caller picks a stable order, and series identity is the rendered
// string). Values are escaped per the Prometheus text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		validName(l.Key)
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		for _, r := range l.Value {
			switch r {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteRune(r)
			}
		}
		b.WriteByte('"')
	}
	return b.String()
}

// Registry holds named metric series. The zero value is not usable; use
// NewRegistry. Registration is idempotent per (name, labels, kind):
// registering an existing series returns it, so independent layers can
// share one series without coordination. Registering a name that exists
// with a different kind panics — it is a wiring bug, not input.
type Registry struct {
	mu       sync.Mutex
	series   map[string]*series
	baseKind map[string]string // base name -> Prometheus exposition type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series), baseKind: make(map[string]string)}
}

func validName(name string) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	for _, r := range name {
		if !(r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			panic(fmt.Sprintf("telemetry: metric name %q is not Prometheus-safe", name))
		}
	}
}

// promType maps a series kind to its Prometheus exposition type; a
// base name must keep one exposition type across all of its label sets.
func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// get returns the series under (name, labels), creating it if absent;
// init runs under the registry lock on both paths, so lazy instrument
// creation and callback replacement are atomic with respect to
// concurrent registration and scrapes.
func (r *Registry) get(name string, labels []Label, help string, k kind, init func(s *series)) *series {
	validName(name)
	ls := renderLabels(labels)
	key := name
	if ls != "" {
		key = name + "{" + ls + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if bk, ok := r.baseKind[name]; ok && bk != k.promType() {
		panic(fmt.Sprintf("telemetry: metric %q registered with exposition types %s and %s", name, bk, k.promType()))
	}
	r.baseKind[name] = k.promType()
	s, ok := r.series[key]
	if ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: metric %q registered twice with different kinds", key))
		}
	} else {
		s = &series{kind: k, base: name, labels: ls, help: help}
		r.series[key] = s
	}
	init(s)
	return s
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith is Counter with a label set attached to the series.
func (r *Registry) CounterWith(name, help string, labels []Label) *Counter {
	return r.get(name, labels, help, kindCounter, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
	}).counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith is Gauge with a label set attached to the series.
func (r *Registry) GaugeWith(name, help string, labels []Label) *Gauge {
	return r.get(name, labels, help, kindGauge, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
	}).gauge
}

// Histogram registers (or returns the existing) histogram under name.
// bounds must be ascending; nil uses LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, help, bounds, nil)
}

// HistogramWith is Histogram with a label set attached to the series.
func (r *Registry) HistogramWith(name, help string, bounds []float64, labels []Label) *Histogram {
	return r.get(name, labels, help, kindHistogram, func(s *series) {
		if s.hist != nil {
			return
		}
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
			}
		}
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}).hist
}

// CounterFunc registers a sampled monotonic counter: fn is called at
// scrape time. Registering an existing name replaces its callback (the
// newest owner wins; used when a layer is re-instrumented).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.CounterFuncWith(name, help, nil, fn)
}

// CounterFuncWith is CounterFunc with a label set attached.
func (r *Registry) CounterFuncWith(name, help string, labels []Label, fn func() uint64) {
	r.get(name, labels, help, kindCounterFunc, func(s *series) { s.counterFunc = fn })
}

// GaugeFunc registers a sampled gauge: fn is called at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.GaugeFuncWith(name, help, nil, fn)
}

// GaugeFuncWith is GaugeFunc with a label set attached.
func (r *Registry) GaugeFuncWith(name, help string, labels []Label, fn func() float64) {
	r.get(name, labels, help, kindGaugeFunc, func(s *series) { s.gaugeFunc = fn })
}

// sorted returns a (base, labels)-ordered snapshot of the series,
// copied by value under the lock so scrapes never observe a
// half-replaced callback. Ordering by base first keeps every label set
// of one metric adjacent, so the exposition writes one HELP/TYPE per
// metric family.
func (r *Registry) sorted() []struct {
	name string
	s    series
} {
	r.mu.Lock()
	out := make([]struct {
		name string
		s    series
	}, 0, len(r.series))
	for name, s := range r.series {
		out = append(out, struct {
			name string
			s    series
		}{name, *s})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].s.base != out[j].s.base {
			return out[i].s.base < out[j].s.base
		}
		return out[i].s.labels < out[j].s.labels
	})
	return out
}

// sample renders "name" or "name{labels}" for one series, with extra
// appended to the label set (the histogram bucket's le).
func (s *series) sample(suffix, extra string) string {
	ls := s.labels
	if extra != "" {
		if ls != "" {
			ls += ","
		}
		ls += extra
	}
	if ls == "" {
		return s.base + suffix
	}
	return s.base + suffix + "{" + ls + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every series in Prometheus text exposition
// format, ordered by (name, labels) with one HELP/TYPE line per metric
// family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	prevBase := ""
	for _, e := range r.sorted() {
		s := e.s
		if s.base != prevBase {
			prevBase = s.base
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.base, s.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.base, s.kind.promType())
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", s.sample("", ""), s.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(&b, "%s %d\n", s.sample("", ""), s.counterFunc())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", s.sample("", ""), fmtFloat(s.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", s.sample("", ""), fmtFloat(s.gaugeFunc()))
		case kindHistogram:
			h := s.hist
			var cum uint64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmtFloat(h.bounds[i])
				}
				fmt.Fprintf(&b, "%s %d\n", s.sample("_bucket", `le="`+le+`"`), cum)
			}
			fmt.Fprintf(&b, "%s %s\n", s.sample("_sum", ""), fmtFloat(h.Sum()))
			fmt.Fprintf(&b, "%s %d\n", s.sample("_count", ""), h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns every series as a JSON-marshalable map: counters and
// gauges map to numbers, histograms to {count, sum, p50, p90, p99}.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, e := range r.sorted() {
		name, s := e.name, e.s
		switch s.kind {
		case kindCounter:
			out[name] = s.counter.Value()
		case kindCounterFunc:
			out[name] = s.counterFunc()
		case kindGauge:
			out[name] = s.gauge.Value()
		case kindGaugeFunc:
			out[name] = s.gaugeFunc()
		case kindHistogram:
			h := s.hist
			out[name] = map[string]any{
				"count": h.Count(),
				"sum":   h.Sum(),
				"p50":   h.Quantile(0.50),
				"p90":   h.Quantile(0.90),
				"p99":   h.Quantile(0.99),
			}
		}
	}
	return out
}
