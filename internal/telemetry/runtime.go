package telemetry

import (
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// memSampleTTL bounds how often a scrape re-runs runtime.ReadMemStats.
// ReadMemStats stops the world briefly; memoizing it keeps a tight
// scrape loop (or several gauges sampled in one scrape) from paying
// that cost per gauge.
const memSampleTTL = time.Second

// MemSampler memoizes runtime.ReadMemStats across the consumers that
// sample it (the runtime gauges here, the gateway's overload
// controller), so a tight sampling loop never pays the stop-the-world
// more than once per TTL. The zero value is ready to use.
type MemSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

// Read returns the memoized MemStats, refreshing it when the TTL has
// elapsed.
func (m *MemSampler) Read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); m.at.IsZero() || now.Sub(m.at) >= memSampleTTL {
		runtime.ReadMemStats(&m.stat)
		m.at = now
	}
	return m.stat
}

// GCPauseP99 reports a conservative p99 over the runtime's ring of the
// last 256 GC pauses: with fewer than 100 samples the max is returned,
// matching the repo-wide rule that approximate quantiles over-report
// rather than under-report.
func GCPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (99*n + 99) / 100 // ceil(0.99*n), 1-based
	if idx > n {
		idx = n
	}
	return float64(pauses[idx-1]) / 1e6
}

// RegisterRuntime adds Go runtime health gauges to the registry:
//
//	netcut_runtime_goroutines      current goroutine count
//	netcut_runtime_heap_bytes      live heap (HeapAlloc)
//	netcut_runtime_gc_pause_p99_ms p99 GC stop-the-world pause (recent window)
//	netcut_runtime_uptime_seconds  seconds since RegisterRuntime
//	netcut_build_info{go_version}  constant 1, labels carry the build
//
// All are sampled at scrape time; registration itself reads no state.
func RegisterRuntime(r *Registry) {
	start := time.Now()
	ms := &MemSampler{}

	r.GaugeFunc("netcut_runtime_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("netcut_runtime_heap_bytes",
		"Bytes of live heap memory (runtime.MemStats.HeapAlloc).",
		func() float64 {
			stat := ms.Read()
			return float64(stat.HeapAlloc)
		})
	r.GaugeFunc("netcut_runtime_gc_pause_p99_ms",
		"p99 GC stop-the-world pause over the runtime's recent pause window, milliseconds (conservative: reports max below 100 samples).",
		func() float64 {
			stat := ms.Read()
			return GCPauseP99(&stat)
		})
	r.GaugeFunc("netcut_runtime_uptime_seconds",
		"Seconds since the process registered runtime metrics.",
		func() float64 { return time.Since(start).Seconds() })

	labels := []Label{{Key: "go_version", Value: runtime.Version()}}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		labels = append(labels, Label{Key: "version", Value: bi.Main.Version})
	}
	r.GaugeFuncWith("netcut_build_info",
		"Build metadata; the value is always 1 and the labels carry the information.",
		labels, func() float64 { return 1 })
}
