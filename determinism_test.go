package netcut

import (
	"runtime"
	"testing"
)

// selectionKey flattens the fields of a Selection that the determinism
// contract covers into one comparable value.
func selectionKey(s *Selection) [2]interface{} {
	return [2]interface{}{
		[4]string{s.Network, s.Parent},
		[5]float64{float64(s.BlocksRemoved), float64(s.LayersRemoved),
			s.EstimatedMs, s.MeasuredMs, s.Accuracy},
	}
}

// TestSelectDeterministicAcrossRunsAndWidths pins the end-to-end
// determinism contract at the public API: the same Options.Seed must
// yield an identical Selection on repeated runs and at any GOMAXPROCS,
// even though profiling, the sweep, SVR cross-validation and Algorithm 1
// all fan out over worker pools internally.
func TestSelectDeterministicAcrossRunsAndWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline three times")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	run := func() *Selection {
		t.Helper()
		sel, err := Select(Options{DeadlineMs: 0.9, Estimator: AnalyticalEstimator, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}

	runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(4)
	wide := run()
	repeat := run()

	if selectionKey(serial) != selectionKey(wide) {
		t.Fatalf("GOMAXPROCS=1 selection %+v differs from GOMAXPROCS=4 selection %+v", serial, wide)
	}
	if selectionKey(wide) != selectionKey(repeat) {
		t.Fatalf("repeated run selected %+v then %+v", wide, repeat)
	}
}
