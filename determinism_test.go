package netcut

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"netcut/internal/graph"
	"netcut/internal/profiler"
)

// selectionKey flattens the fields of a Selection that the determinism
// contract covers into one comparable value.
func selectionKey(s *Selection) [2]interface{} {
	return [2]interface{}{
		[4]string{s.Network, s.Parent},
		[5]float64{float64(s.BlocksRemoved), float64(s.LayersRemoved),
			s.EstimatedMs, s.MeasuredMs, s.Accuracy},
	}
}

// TestSelectDeterministicAcrossRunsAndWidths pins the end-to-end
// determinism contract at the public API: the same Options.Seed must
// yield an identical Selection on repeated runs and at any GOMAXPROCS,
// even though profiling, the sweep, SVR cross-validation and Algorithm 1
// all fan out over worker pools internally.
func TestSelectDeterministicAcrossRunsAndWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline three times")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	run := func() *Selection {
		t.Helper()
		sel, err := Select(Options{DeadlineMs: 0.9, Estimator: AnalyticalEstimator, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}

	runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(4)
	wide := run()
	repeat := run()

	if selectionKey(serial) != selectionKey(wide) {
		t.Fatalf("GOMAXPROCS=1 selection %+v differs from GOMAXPROCS=4 selection %+v", serial, wide)
	}
	if selectionKey(wide) != selectionKey(repeat) {
		t.Fatalf("repeated run selected %+v then %+v", wide, repeat)
	}
}

// planKey flattens the fields of a PlanResponse that the determinism
// contract covers into one comparable value.
func planKey(r *PlanResponse) [10]interface{} {
	return [10]interface{}{
		r.Feasible, r.Network, r.Parent, r.BlocksRemoved, r.LayersRemoved,
		r.EstimatedMs, r.MeasuredMs, r.Accuracy, r.TrainHours, r.Iterations,
	}
}

// stressNet builds one of M structurally distinct user graphs.
func stressNet(i int) *Graph {
	b := graph.NewBuilder(fmt.Sprintf("stress-net-%d", i), graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8+i%4, 2, graph.Same)
	for blk := 0; blk < 2+i%3; blk++ {
		b.BeginBlock(fmt.Sprintf("b%d", blk))
		y := b.ConvBNReLU(x, 3, 8+i%4, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

// stressProto keeps the stress matrix fast; the determinism contract is
// protocol-independent because every noise stream is seeded per network.
var stressProto = profiler.Protocol{WarmupRuns: 10, TimedRuns: 40}

// TestPlannerDeterministicUnderConcurrentStress extends the determinism
// contract to the shared-cache Planner: N goroutines times M distinct
// graphs, with every graph also requested repeatedly, must produce
// byte-identical PlanResponses to a serial replay on a fresh Planner,
// regardless of interleaving and GOMAXPROCS. Run under -race in CI,
// this is also the planner's data-race probe.
func TestPlannerDeterministicUnderConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		distinct   = 5
		rounds     = 3
		seed       = 19
	)
	newPlanner := func() *Planner {
		p, err := NewPlanner(PlannerConfig{Seed: seed, Protocol: stressProto})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Serial reference, one fresh planner, GOMAXPROCS pinned to 1.
	prev := runtime.GOMAXPROCS(1)
	ref := newPlanner()
	want := make([][10]interface{}, distinct)
	for i := range want {
		r, err := ref.Select(PlanRequest{Graph: stressNet(i), DeadlineMs: 0.35})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = planKey(r)
	}
	runtime.GOMAXPROCS(prev)
	defer runtime.GOMAXPROCS(prev)

	for _, width := range []int{1, 4} {
		runtime.GOMAXPROCS(width)
		p := newPlanner()
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for round := 0; round < rounds; round++ {
					for j := 0; j < distinct; j++ {
						i := (j + w + round) % distinct
						r, err := p.Select(PlanRequest{Graph: stressNet(i), DeadlineMs: 0.35})
						if err != nil {
							errs <- err
							return
						}
						if planKey(r) != want[i] {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d round %d: %s diverged from serial replay:\n got %v\nwant %v",
								width, w, round, stressNet(i).Name, planKey(r), want[i])
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestPlannerRepeatedRequestIsCacheHit pins the cross-request sharing
// the Planner exists for: a repeated identical request must be served
// from the shared caches (no new measurement-cache misses) and return
// the byte-identical response.
func TestPlannerRepeatedRequestIsCacheHit(t *testing.T) {
	p, err := NewPlanner(PlannerConfig{Seed: 5, Protocol: stressProto})
	if err != nil {
		t.Fatal(err)
	}
	g := stressNet(0)
	first, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	missesAfterCold := p.Stats().Measurements.Misses
	second, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if planKey(first) != planKey(second) {
		t.Fatalf("repeated request diverged: %v vs %v", planKey(first), planKey(second))
	}
	if got := p.Stats().Measurements.Misses; got != missesAfterCold {
		t.Fatalf("repeated request caused %d new measurement misses", got-missesAfterCold)
	}
}
