package netcut

import (
	"strings"
	"testing"
)

func TestSelectAtPaperDeadline(t *testing.T) {
	sel, err := Select(Options{DeadlineMs: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Parent != "ResNet-50" {
		t.Fatalf("selected parent %s, want ResNet-50 (paper Fig. 10)", sel.Parent)
	}
	if sel.EstimatedMs > 0.9 {
		t.Fatalf("estimate %.3f over deadline", sel.EstimatedMs)
	}
	if sel.Accuracy <= 0.81 {
		t.Fatalf("accuracy %.3f does not beat the off-the-shelf pick", sel.Accuracy)
	}
	if !strings.HasPrefix(sel.Network, "ResNet-50/") {
		t.Fatalf("network label %q malformed", sel.Network)
	}
	if sel.LayersRemoved < 80 || sel.LayersRemoved > 130 {
		t.Fatalf("layers removed %d outside the paper's 94-114 neighbourhood", sel.LayersRemoved)
	}
}

func TestSelectEstimators(t *testing.T) {
	for _, est := range []EstimatorKind{ProfilerEstimator, AnalyticalEstimator} {
		sel, err := Select(Options{DeadlineMs: 0.9, Estimator: est, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", est, err)
		}
		if sel.Result.EstimatorName != string(est) {
			t.Fatalf("estimator %s ran as %s", est, sel.Result.EstimatorName)
		}
	}
	if _, err := Select(Options{Estimator: "magic"}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestSelectImpossibleDeadline(t *testing.T) {
	_, err := Select(Options{DeadlineMs: 0.001, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "no network can meet") {
		t.Fatalf("err = %v, want infeasibility", err)
	}
}

func TestExploreReturnsAllProposals(t *testing.T) {
	res, err := Explore(Options{DeadlineMs: 1.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proposals) != 7 {
		t.Fatalf("%d proposals, want 7", len(res.Proposals))
	}
}

func TestZooAccessors(t *testing.T) {
	if len(Networks()) != 7 || len(NetworkNames()) != 7 {
		t.Fatal("zoo accessors broken")
	}
	g, err := NetworkByName("DenseNet-121")
	if err != nil || g.Name != "DenseNet-121" {
		t.Fatalf("NetworkByName: %v %v", g, err)
	}
	if MeasureMs(g) <= 0 {
		t.Fatal("MeasureMs returned non-positive latency")
	}
	tbl, err := ProfileTable(g, 1)
	if err != nil || len(tbl.Layers) == 0 {
		t.Fatalf("ProfileTable: %v %v", tbl, err)
	}
}

func TestCutAndFrontierFacade(t *testing.T) {
	g, _ := NetworkByName("ResNet-50")
	trn, err := Cut(g, 9, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if trn.Name() != "ResNet-50/94" {
		t.Fatalf("cut 9 = %s, want ResNet-50/94", trn.Name())
	}
	trns, err := BlockwiseTRNs(g, DefaultHead)
	if err != nil || len(trns) != 16 {
		t.Fatalf("BlockwiseTRNs: %d %v", len(trns), err)
	}
	f := Frontier([]Point{{Label: "a", Latency: 1, Accuracy: 0.9}, {Label: "b", Latency: 2, Accuracy: 0.8}})
	if len(f) != 1 || f[0].Label != "a" {
		t.Fatalf("Frontier facade broken: %v", f)
	}
}
