// Pareto explorer: the blockwise layer-removal study of Sec. IV. It
// retrains the full 148-TRN blockwise family (simulated), prints the
// off-the-shelf and TRN Pareto frontiers, and quantifies the accuracy
// that layer removal recovers at a sweep of deadlines — the
// accuracy-gap/slack-time argument of Fig. 1 and Fig. 7.
//
//	go run ./examples/paretoexplorer
package main

import (
	"fmt"
	"log"

	"netcut"
	"netcut/internal/exp"
)

func main() {
	lab, err := netcut.NewLab(netcut.LabConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fig7, err := lab.Fig7()
	if err != nil {
		log.Fatal(err)
	}
	offFrontier := seriesPoints(&fig7.Series[0])
	trnFrontier := seriesPoints(&fig7.Series[1])

	fmt.Println("off-the-shelf Pareto frontier:")
	printFrontier(offFrontier)
	fmt.Printf("\nblockwise TRN Pareto frontier (%d points — %d more operating points):\n",
		len(trnFrontier), len(trnFrontier)-len(offFrontier))
	printFrontier(trnFrontier)

	fmt.Println("\naccuracy recovered by layer removal at each deadline:")
	fmt.Printf("%10s  %-26s %-26s %8s\n", "deadline", "off-the-shelf pick", "TRN pick", "gain")
	for _, d := range []float64{0.4, 0.6, 0.9, 1.2, 1.6, 2.4, 3.2} {
		off, okOff := best(offFrontier, d)
		trn, okTrn := best(trnFrontier, d)
		if !okOff || !okTrn {
			fmt.Printf("%9.1f   (no network meets the deadline)\n", d)
			continue
		}
		gain := (trn.Accuracy/off.Accuracy - 1) * 100
		fmt.Printf("%9.1f   %-26s %-26s %+7.2f%%\n",
			d, fmt.Sprintf("%s (%.3f)", off.Label, off.Accuracy),
			fmt.Sprintf("%s (%.3f)", trn.Label, trn.Accuracy), gain)
	}
	fmt.Println()
	for _, n := range fig7.Notes {
		fmt.Println("* " + n)
	}
}

func seriesPoints(s *exp.Series) []netcut.Point {
	pts := make([]netcut.Point, s.Len())
	for i := range pts {
		pts[i] = netcut.Point{Label: s.Labels[i], Latency: s.X[i], Accuracy: s.Y[i]}
	}
	return pts
}

func printFrontier(pts []netcut.Point) {
	for _, p := range pts {
		fmt.Printf("  %8.3f ms  %.3f  %s\n", p.Latency, p.Accuracy, p.Label)
	}
}

func best(pts []netcut.Point, deadline float64) (netcut.Point, bool) {
	var out netcut.Point
	found := false
	for _, p := range pts {
		if p.Latency <= deadline && (!found || p.Accuracy > out.Accuracy) {
			out, found = p, true
		}
	}
	return out, found
}
