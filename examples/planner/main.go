// Planner: run NetCut as a long-lived service instead of a per-call
// pipeline.
//
//	go run ./examples/planner
//
// Where netcut.Select builds a fresh lab for every call, a Planner is
// constructed once and then serves Select-style requests from any
// number of goroutines. All requests share one simulated device, one
// profiler and one retraining simulator, so the expensive work —
// kernel planning, the 200/800 measurement protocol, per-layer tables,
// TRN construction — happens once per distinct architecture and is a
// cache hit afterwards. Every structure-keyed cache is a bounded LRU,
// so a stream of never-repeating graphs still runs in constant memory;
// an evicted architecture simply re-measures to the byte-identical
// result (caches are transparent).
//
// The example issues three rounds of requests:
//
//  1. a paper network (cold: everything is measured),
//  2. the same network again (warm: pure cache hits),
//  3. a synthetic "user" graph the calibrated zoo knows nothing about —
//     the planner synthesizes a deterministic generic transfer profile
//     from the graph's own structure, so even unknown architectures
//     plan reproducibly.
package main

import (
	"fmt"
	"log"
	"time"

	"netcut"
	"netcut/internal/graph"
)

func main() {
	planner, err := netcut.NewPlanner(netcut.PlannerConfig{
		Seed: 1,
		// Cache knobs (0 keeps the defaults): bound the shared caches
		// when serving untrusted, high-cardinality graph streams.
		//   PlanCacheCap:        4096,
		//   MeasurementCacheCap: 8192,
		//   TableCacheCap:       1024,
		//   CutCacheCap:         8192,
	})
	if err != nil {
		log.Fatal(err)
	}

	resnet, err := netcut.NetworkByName("ResNet-50")
	if err != nil {
		log.Fatal(err)
	}

	ask := func(label string, g *netcut.Graph) {
		start := time.Now()
		resp, err := planner.Select(netcut.PlanRequest{Graph: g, DeadlineMs: 0.9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %-20s est %.3f ms  acc %.3f  (%v)\n",
			label, resp.Network, resp.EstimatedMs, resp.Accuracy, time.Since(start).Round(time.Microsecond))
	}

	ask("ResNet-50 (cold)", resnet)
	ask("ResNet-50 (warm, cached)", resnet)

	// A network the paper zoo has never seen: a small residual net.
	b := graph.NewBuilder("custom-resnet-8", graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 16, 2, graph.Same)
	for blk := 0; blk < 4; blk++ {
		b.BeginBlock(fmt.Sprintf("res%d", blk))
		y := b.ConvBNReLU(x, 3, 16, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	custom := b.MustFinish()

	ask("custom-resnet-8 (unknown)", custom)

	s := planner.Stats()
	fmt.Printf("\nafter %d requests: %d plans, %d measurements, %d tables, %d cuts resident\n",
		s.Requests, s.Plans.Len, s.Measurements.Len, s.Tables.Len, s.Cuts.Len)
	fmt.Printf("measurement cache hit rate: %.1f%%\n", 100*s.Measurements.HitRate())
}
