// Mini transfer: the paper's mechanics executed for real, not
// simulated, at laptop scale. A small CNN is pretrained on an 8-class
// shape task (the ImageNet stand-in), then transferred to the 5-grasp
// HANDS-like task with blockwise layer removal (Sec. IV): for each
// cutpoint the TRN keeps the pretrained feature prefix, gets the
// replacement head (GAP + 2 FC/ReLU + FC), and is fine-tuned with the
// paper's two-phase protocol. Finally the best TRN is post-training
// quantized with a 10% calibration split (Sec. III-B4).
//
// Expected shape: transfer beats training from scratch, removing the
// last block costs little (generic early features), deeper cuts cost
// progressively more (problem-specific late features) — the same
// qualitative curve as Fig. 5.
//
//	go run ./examples/minitransfer
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netcut/internal/hands"
	"netcut/internal/nn"
	"netcut/internal/quant"
)

func main() {
	const (
		imgSize = 14
		blocks  = 4
	)
	cfg := nn.MiniConfig{
		InputH: imgSize, StemC: 8, Width: 12, Blocks: blocks,
		Classes: hands.PretrainClasses, HeadHidden: 24, Kind: nn.ResidualBlocks,
	}

	// "ImageNet": pretrain on the richer shape vocabulary.
	rng := rand.New(rand.NewSource(1))
	pretrainDS := hands.GeneratePretrain(hands.Config{N: 480, Size: imgSize, Seed: 1})
	src, err := nn.Build(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("pretraining 4-block CNN on the 8-class shape task... ")
	if _, err := nn.Train(src, pretrainDS, nn.TrainConfig{
		Epochs: 20, BatchSize: 24, Optimizer: nn.NewAdam(2e-3), Seed: 2,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done (accuracy %.3f)\n\n", nn.Evaluate(src, pretrainDS))

	// "HANDS": the simpler 5-grasp target task. Like the paper's setting
	// the target data is scarce — that scarcity is why transfer learning
	// (and therefore layer removal of transferred networks) matters.
	grasps := hands.Generate(hands.Config{N: 240, Size: imgSize, Seed: 3})
	train, val := hands.Split(grasps, 0.2, 4) // 48 training examples

	fmt.Printf("target task: %d training / %d validation examples\n\n", train.Len(), val.Len())
	fmt.Printf("%-10s %-14s %-12s %-12s\n", "cut", "frozen-feats", "fine-tuned", "from-scratch")
	var bestAcc float64
	var bestModel *nn.Model
	for cut := 0; cut <= blocks; cut++ {
		// Frozen transfer: pretrained features untouched, head only.
		// This is where "later layers are problem-specific" shows up
		// directly: removing the last pretrained block often *helps*.
		frozen, err := nn.CutModel(src, cfg, cut, hands.NumGrasps, rand.New(rand.NewSource(int64(10+cut))))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := nn.Train(frozen, train, nn.TrainConfig{
			Epochs: 20, BatchSize: 16, Optimizer: nn.NewAdam(1e-3), HeadOnly: true, Seed: int64(15 + cut),
		}); err != nil {
			log.Fatal(err)
		}
		frozenAcc := nn.Evaluate(frozen, val)

		// Full transfer: the two-phase protocol. Mini-scale networks see
		// ~60 optimizer steps, so the full phase keeps lr 1e-3 instead
		// of the paper's 1e-4 (documented adaptation).
		trn, err := nn.CutModel(src, cfg, cut, hands.NumGrasps, rand.New(rand.NewSource(int64(10+cut))))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := nn.FineTuneLR(trn, train, 8, 12, 16, int64(20+cut), 1e-3, 1e-3); err != nil {
			log.Fatal(err)
		}
		transferAcc := nn.Evaluate(trn, val)

		// Baseline: same trimmed architecture trained from scratch on
		// the scarce target data, same epoch budget.
		scratchCfg := cfg
		scratchCfg.Blocks = blocks - cut
		scratchCfg.Classes = hands.NumGrasps
		scratch, err := nn.Build(scratchCfg, rand.New(rand.NewSource(int64(30+cut))))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := nn.Train(scratch, train, nn.TrainConfig{
			Epochs: 20, BatchSize: 16, Optimizer: nn.NewAdam(1e-3), Seed: int64(40 + cut),
		}); err != nil {
			log.Fatal(err)
		}
		scratchAcc := nn.Evaluate(scratch, val)

		fmt.Printf("%-10s %-14.3f %-12.3f %-12.3f\n",
			fmt.Sprintf("-%d blocks", cut), frozenAcc, transferAcc, scratchAcc)
		if transferAcc > bestAcc {
			bestAcc, bestModel = transferAcc, trn
		}
	}

	// Deployment optimization: post-training int8 quantization with a
	// 10% calibration split.
	calib := hands.CalibrationSet(train, 5)
	before := nn.Evaluate(bestModel, val)
	rep, err := quant.Apply(bestModel, calib, quant.Config{FoldBN: true})
	if err != nil {
		log.Fatal(err)
	}
	after := nn.Evaluate(bestModel, val)
	fmt.Printf("\npost-training quantization of the best TRN: folded %d BNs, %d int8 weights\n",
		rep.FoldedBN, rep.QuantizedParams)
	fmt.Printf("accuracy %.3f -> %.3f (drop %.3f)\n", before, after, before-after)
}
