// Quickstart: ask NetCut for the most accurate network that meets a
// real-time deadline.
//
//	go run ./examples/quickstart
//
// The pipeline behind the one call: the seven ImageNet architectures
// are profiled on the simulated embedded GPU, the Eq. (1) latency
// estimator is built from the per-layer tables, Algorithm 1 proposes
// one deadline-feasible TRN per network, the proposals are retrained,
// and the most accurate one wins.
package main

import (
	"fmt"
	"log"

	"netcut"
)

func main() {
	sel, err := netcut.Select(netcut.Options{
		DeadlineMs: 0.9, // the prosthetic hand's visual-classifier budget
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deadline        : 0.9 ms\n")
	fmt.Printf("selected network: %s\n", sel.Network)
	fmt.Printf("  parent        : %s\n", sel.Parent)
	fmt.Printf("  blocks removed: %d (%d layers)\n", sel.BlocksRemoved, sel.LayersRemoved)
	fmt.Printf("  est / measured: %.3f / %.3f ms\n", sel.EstimatedMs, sel.MeasuredMs)
	fmt.Printf("  accuracy      : %.3f (angular distance)\n", sel.Accuracy)
	fmt.Println()

	fmt.Println("all proposals:")
	for _, p := range sel.Result.Proposals {
		fmt.Printf("  %-24s est %.3f ms  acc %.3f\n", p.TRN.Name(), p.EstimateMs, p.Accuracy)
	}
	fmt.Printf("\nretrained %d TRNs (%.1f simulated GPU-hours) instead of the 148-candidate sweep\n",
		sel.Result.RetrainedCount, sel.Result.ExplorationHours)
}
