// Prosthetic hand: the paper's motivating application end to end
// (Sec. III). A reaching hand fuses a noisy EMG intent classifier with
// a visual grasp classifier under a 0.9 ms per-frame inference budget.
// The example compares three deployments of the visual classifier:
//
//  1. the most accurate off-the-shelf network (DenseNet-121) — too slow,
//     every frame misses the budget, the robot runs EMG-only;
//
//  2. the fastest safe off-the-shelf choice (MobileNetV1 (0.5));
//
//  3. the NetCut-selected TRN, which spends the slack on accuracy.
//
//     go run ./examples/prosthetichand
package main

import (
	"fmt"
	"log"

	"netcut"
	"netcut/internal/device"
	"netcut/internal/robot"
)

func main() {
	// Run NetCut once to get the deadline-optimal TRN.
	sel, err := netcut.Select(netcut.Options{DeadlineMs: 0.9, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	dev := device.New(device.Xavier())
	deployments := []robot.VisionModel{
		visionFor(dev, "DenseNet-121", 0.922),
		visionFor(dev, "MobileNetV1 (0.5)", 0.809),
		{
			Name:      sel.Network + " (NetCut)",
			LatencyMs: latencySampler(dev, sel),
			Accuracy:  sel.Accuracy,
		},
	}

	fmt.Println("robotic prosthetic hand: 30 fps palm camera, 0.9 ms inference budget,")
	fmt.Println("900 ms reach, 350 ms actuation window, EMG+vision fusion, 200 reach trials")
	fmt.Println()
	fmt.Printf("%-34s %9s %9s %9s %9s\n", "visual classifier", "miss-rate", "decided", "success", "fused-sim")
	for _, vm := range deployments {
		cfg := robot.DefaultConfig()
		cfg.Seed = 42
		r, err := robot.New(cfg, vm)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := r.RunTrials(200)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8.0f%% %8.0f%% %8.0f%% %9.3f\n",
			vm.Name, 100*sum.MissRate, 100*sum.DecisionRate, 100*sum.SuccessRate, sum.MeanFusedSim)
	}
	fmt.Println()
	fmt.Println("the TRN keeps every frame inside the budget like MobileNetV1 (0.5) does,")
	fmt.Println("but converts the slack into accuracy the fusion can actually use.")
}

// visionFor builds a VisionModel for an off-the-shelf network measured
// on the simulated device.
func visionFor(dev *device.Device, name string, accuracy float64) robot.VisionModel {
	g, err := netcut.NetworkByName(name)
	if err != nil {
		log.Fatal(err)
	}
	s := dev.Open(g, 7)
	for i := 0; i < 200; i++ {
		s.InferMs() // warm up, as the measurement protocol does
	}
	return robot.VisionModel{
		Name:      name,
		LatencyMs: s.InferMs,
		Accuracy:  accuracy,
	}
}

// latencySampler opens a warm device session for the selected TRN.
func latencySampler(dev *device.Device, sel *netcut.Selection) func() float64 {
	s := dev.Open(sel.Result.Best.TRN.Graph, 7)
	for i := 0; i < 200; i++ {
		s.InferMs()
	}
	return s.InferMs
}
