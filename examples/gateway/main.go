// Example gateway: boots the deadline-aware serving gateway over the
// full device fleet on a loopback listener, drives it like a client —
// a zoo request, a custom graph, a burst of identical requests that
// coalesce into one planner execution, a budget-constrained request
// that gets shed, the /v1/devices listing, the same network planned on
// two explicit targets, and an auto-routed request whose body matches
// the explicit spelling — then scrapes /metrics and drains.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"netcut"
	"netcut/internal/gateway"
	"netcut/internal/graph"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// customNet is a small residual network standing in for a user
// architecture outside the calibrated zoo.
func customNet() *netcut.Graph {
	b := graph.NewBuilder("example-net", graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8, 2, graph.Same)
	for blk := 0; blk < 4; blk++ {
		b.BeginBlock(fmt.Sprintf("b%d", blk))
		y := b.ConvBNReLU(x, 3, 8, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

func post(base string, body string) (int, string) {
	resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		die(err)
	}
	return resp.StatusCode, strings.TrimSpace(string(b))
}

func main() {
	// ShedMinSamples 1 so this short demo reaches the shed path; the
	// production default waits for a fuller warm histogram.
	gw, err := netcut.NewGateway(netcut.GatewayConfig{
		Planner:        netcut.PlannerConfig{Seed: 1},
		ShedMinSamples: 1,
	})
	if err != nil {
		die(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(err)
	}
	srv := &http.Server{Handler: gw.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("gateway listening on", base)

	// 1. A calibrated zoo network by name — twice: the repeat is served
	// warm from the shared caches and seeds the warm-latency histogram
	// the shed path reads.
	code, body := post(base, `{"network":"ResNet-50","deadline_ms":0.9}`)
	fmt.Printf("\nzoo request         -> %d %s\n", code, body)
	post(base, `{"network":"ResNet-50","deadline_ms":0.9}`)

	// 2. A custom graph over the wire.
	gjson, err := json.Marshal(gateway.EncodeGraph(customNet()))
	if err != nil {
		die(err)
	}
	code, body = post(base, fmt.Sprintf(`{"graph":%s,"deadline_ms":0.35}`, gjson))
	fmt.Printf("custom graph        -> %d %s\n", code, body)

	// 3. A burst of identical requests: arrivals that overlap an
	// in-flight identical execution join it instead of planning again
	// (stragglers landing after it completes run warm from the shared
	// caches), and every body is byte-identical either way.
	const burst = 16
	before := gw.Planner().Executions()
	var wg sync.WaitGroup
	bodies := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i] = post(base, `{"network":"InceptionV3","deadline_ms":0.9}`)
		}(i)
	}
	wg.Wait()
	identical := true
	for _, b := range bodies[1:] {
		identical = identical && b == bodies[0]
	}
	fmt.Printf("burst of %d         -> %d planner execution(s), identical bodies: %v\n",
		burst, gw.Planner().Executions()-before, identical)

	// 4. A request whose own latency budget cannot cover the warm p99.
	code, body = post(base, `{"network":"ResNet-50","deadline_ms":0.9,"budget_ms":0.000001}`)
	fmt.Printf("tiny budget_ms      -> %d %s\n", code, body)

	// 5. The device fleet: list the registered targets, plan the same
	// network on two of them (different calibrations, different
	// measured latencies, zero shared cache entries), and let "auto"
	// route — its body is byte-identical to naming the resolved device
	// explicitly.
	resp, err := http.Get(base + "/v1/devices")
	if err != nil {
		die(err)
	}
	devices, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var fleet struct {
		Devices []gateway.DeviceWire `json:"devices"`
	}
	if err := json.Unmarshal(devices, &fleet); err != nil {
		die(err)
	}
	fmt.Printf("\n/v1/devices         -> %d registered targets:\n", len(fleet.Devices))
	for _, d := range fleet.Devices {
		fmt.Printf("  %-16s default=%-5v precision=%s\n", d.Name, d.Default, d.Precision)
	}
	_, onXavier := post(base, `{"network":"MobileNetV2 (1.0)","deadline_ms":0.9,"target":"sim-xavier"}`)
	_, onGPU := post(base, `{"network":"MobileNetV2 (1.0)","deadline_ms":0.9,"target":"sim-server-gpu"}`)
	fmt.Printf("xavier target       -> %s\n", onXavier)
	fmt.Printf("server-gpu target   -> %s\n", onGPU)
	_, auto := post(base, `{"network":"MobileNetV2 (1.0)","deadline_ms":0.9,"target":"auto"}`)
	var routed struct {
		Device string `json:"device"`
	}
	if err := json.Unmarshal([]byte(auto), &routed); err != nil {
		die(err)
	}
	_, explicit := post(base, fmt.Sprintf(
		`{"network":"MobileNetV2 (1.0)","deadline_ms":0.9,"target":%q}`, routed.Device))
	fmt.Printf("auto target         -> routed to %s (byte-identical to explicit: %v)\n",
		routed.Device, auto == explicit)

	// 6. The observability surface.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		die(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\n/metrics excerpt:")
	for _, line := range bytes.Split(metrics, []byte("\n")) {
		s := string(line)
		if strings.HasPrefix(s, "netcut_gateway_") && !strings.HasPrefix(s, "#") {
			fmt.Println(" ", s)
		}
	}

	// 7. Graceful drain.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		die(err)
	}
	if err := gw.Shutdown(ctx); err != nil {
		die(err)
	}
	fmt.Println("\ndrained cleanly")
}
