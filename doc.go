// Package netcut reproduces "NetCut: Real-Time DNN Inference Using
// Layer Removal" (Zandigohar, Erdoğmuş, Schirner — DATE 2021) as a Go
// library.
//
// NetCut constructs TRimmed Networks (TRNs) by removing problem-specific
// top layers from pretrained networks used in transfer learning, and
// explores them deadline-first: a latency estimator (a profiler-based
// per-layer table, Eq. (1), or an analytical epsilon-SVR over
// device-agnostic features) proposes only the TRNs that meet an
// application deadline, so just a handful of networks are ever
// retrained.
//
// The root package is a facade over the internal substrates:
//
//   - internal/graph, internal/zoo: layer-graph IR and the seven paper
//     architectures (MobileNetV1/V2, ResNet-50, InceptionV3,
//     DenseNet-121)
//   - internal/trim: blockwise and per-layer TRN construction
//   - internal/device, internal/profiler: a calibrated embedded-GPU
//     simulator standing in for the paper's Jetson Xavier, and the
//     200-warm-up/800-run measurement protocol
//   - internal/svr, internal/estimate: epsilon-SVR (SMO with exact line
//     search), grid search, cross-validation, Eq. (1), and the linear
//     baseline
//   - internal/transfer: the retraining simulator calibrated to the
//     paper's accuracy-vs-removal curves and 183-hour sweep cost
//   - internal/core: Algorithm 1 and the blockwise-sweep baseline
//   - internal/tensor, internal/nn, internal/hands, internal/quant: a
//     real, from-scratch trainable CNN stack for the miniature
//     end-to-end pipeline
//   - internal/emg, internal/fusion, internal/robot: the prosthetic-
//     hand application context that sets the 0.9 ms deadline
//   - internal/exp: the harness regenerating every figure and table
//
// Quick start:
//
//	sel, err := netcut.Select(netcut.Options{DeadlineMs: 0.9})
//	if err != nil { ... }
//	fmt.Println(sel.Network, sel.Accuracy)
//
// # Performance architecture
//
// The measurement pipeline is built for throughput. Loop-invariant work
// is memoized at every layer: the device caches each graph's fused
// kernel plan, steady-state kernel times and MAC-share attribution
// (keyed by structural fingerprint, so independently re-cut copies of
// the same TRN share one plan); the profiler memoizes whole
// measurements and per-layer tables per plan key; and internal/trim
// memoizes built TRNs, so Algorithm 1's inner loop costs one subgraph
// build per distinct cut. The experiment Lab guards each shared
// artefact (candidates, tables, the 148-sample set, the sweep, the
// trained estimators) with a singleflight cell and fans its measurement
// work — per network, per TRN, per SVR grid point x fold, per figure —
// out over a bounded worker pool (internal/par).
//
// Determinism contract: parallelism changes wall-clock time only, never
// results. Every task derives its randomness from the configured seed
// plus the task's own identity (the profiler XORs the seed with a hash
// of the network name; the retraining simulator hashes seed, network
// and cut), and fan-outs write into position-indexed slots, so figure
// renders and Select output are byte-identical for a fixed seed across
// repeated runs and any GOMAXPROCS.
//
// # The Planner service
//
// Select builds a fresh measurement lab per call; the Planner
// (NewPlanner, internal/serve) is the long-lived alternative for
// serving a stream of requests:
//
//	planner, err := netcut.NewPlanner(netcut.PlannerConfig{Seed: 1})
//	resp, err := planner.Select(netcut.PlanRequest{Graph: g, DeadlineMs: 0.9})
//
// Lifecycle: construct once, share freely. A Planner is safe for
// arbitrarily many concurrent Select calls and never needs shutdown —
// it owns no goroutines or descriptors, only caches. All requests
// share one simulated device, one profiler and one retraining
// simulator, so each distinct architecture pays for kernel planning,
// the 200/800 measurement protocol and TRN construction once; repeated
// or structurally identical requests are cache hits end to end
// (Planner.Stats exposes the hit counters). Graphs outside the
// calibrated zoo are admitted after graph.Validate and retrain against
// a generic transfer profile derived deterministically from the
// graph's own name and depth.
//
// Cache bounding: every structure-keyed cache is a bounded LRU, so a
// stream of never-repeating graphs runs in constant memory. The knobs
// live on PlannerConfig — PlanCacheCap (device kernel plans, default
// 4096), MeasurementCacheCap (8192) and TableCacheCap (1024) are
// per-planner; CutCacheCap re-bounds the TRN cut cache, which is
// process-wide and shared by every Planner (default 8192; set it once
// at startup in multi-tenant processes). 0 keeps the current setting
// and a negative value unbounds the layer.
//
// Determinism across shared caches: every cached value is a pure
// function of (seed, device config, graph structure), never of request
// order, so the caches are transparent — a hit returns exactly what a
// recompute would, and eviction merely restores the recompute cost.
// Consequently a Planner's responses are byte-identical to single-use
// Select for the same seed, to a serial replay of any concurrent
// request interleaving, and across GOMAXPROCS settings; the planner
// stress tests in determinism_test.go and the eviction-transparency
// tests in internal/{device,profiler,trim,serve} pin all three.
//
// # The serving gateway
//
// The Gateway (NewGateway, internal/gateway) puts a deadline-aware
// HTTP front on a Planner; cmd/netserve is the daemon that mounts it:
//
//	gw, err := netcut.NewGateway(netcut.GatewayConfig{})
//	srv := &http.Server{Addr: ":8080", Handler: gw.Handler()}
//
// POST /v1/plan accepts {"network": "ResNet-50", "deadline_ms": 0.9}
// for calibrated zoo architectures or {"graph": {...}} for arbitrary
// layer graphs (schema: internal/gateway wire format). The body is
// size-limited and the decoded graph stops at graph.Validate —
// malformed or oversized input is a structured 4xx, never a panic.
//
// Admission is deadline-aware in four stages. A repeat of an already
// delivered request — same resolved device, name, structure, deadline
// and estimator — is answered from a bounded rendered-response byte
// cache (GatewayConfig.ByteCacheCap, on by default; negative disables)
// straight from admission, after the drain, quarantine and
// device-health gates but before any queueing, skipping its lane, the
// planner and the JSON rendering. Identical in-flight requests
// coalesce into one planner execution, singleflight-style, and all
// receive byte-identical bodies. Distinct compatible requests drain
// from a bounded queue into batched planner passes
// (Planner.SelectBatch). A request carrying its own latency budget
// ("budget_ms") that cannot cover the observed warm-path p99 is shed
// up front with 429 and a retry hint — as is any arrival finding the
// queue full — consuming no planner work (a byte-cache hit beats the
// shed: delivering rendered bytes fits any budget). Gateway.Shutdown
// drains gracefully: new requests get 503 with a Retry-After derived
// from the remaining drain budget while every admitted call completes
// and delivers.
//
// Caching, coalescing, batching and shedding change which executions
// happen and when — never what any request returns: a cached,
// coalesced or batched response body is byte-identical to the same
// request served alone through a Planner (pinned by the gateway
// package tests, the TestByteCache* seam suite and the GOMAXPROCS
// determinism guard). Only fully delivered 200 bodies are cached —
// errors, contained panics and watchdog-abandoned passes never are —
// tripping a device's health purges its entries, and hits/misses are
// distinct /metrics series (netcut_gateway_bytecache_*) next to the
// planner's execution counters.
//
// # Targets & routing
//
// NetCut's latency model is intrinsically per-platform, so the serving
// stack is device-keyed end to end. internal/device carries a registry
// of named calibrations (DeviceProfiles: sim-xavier, the default;
// sim-edge-cpu; sim-server-gpu; sim-int8-accel), and a PlannerPool
// (NewPlannerPool) runs one Planner per registered target behind one
// façade. The Gateway serves the pool: each request picks its target
// with the wire field "target" — a registered name, "" for the default
// device, or "auto", which routes to the fastest device whose
// estimated warm-path latency (warm p99) fits the client's budget_ms
// and sheds only when no device qualifies. GET /v1/devices lists the
// fleet in routing order with live telemetry.
//
// Cross-device isolation is structural, not conventional: the device
// calibration fingerprint (DeviceConfig.Fingerprint) is folded into
// every plan key, which the profiler's measurement and table memos
// inherit, and into the TRN cut-cache keys the planner's explorations
// create — so two targets can never share plans, measurements, tables
// or cuts, while repeats on one target stay warm hits. Cache caps are
// per pool: the configured totals are divided across targets, so
// registering more devices re-slices memory instead of multiplying
// it. Routing, like shedding, is admission policy — it decides where
// an execution runs, never what it returns: per-device responses are
// byte-identical to a single-device Planner with the same seed and
// calibration, and an auto-routed body to the same request naming the
// resolved device explicitly (pinned by the pool tests and the
// gateway's GOMAXPROCS guard, which covers target "auto"). Per-device
// observability rides the same registry: execution, cache and latency
// series carry a device label on /metrics.
//
// # State persistence & lanes
//
// Restarts and slow targets are kept off the warm path. A Planner,
// PlannerPool or Gateway can snapshot its warm state — device kernel
// plans, profiler measurements and tables, and the device-scoped TRN
// cut cache — with SaveState and restore it with LoadState.
// internal/persist defines the format: a compact, deterministic binary
// envelope (magic, schema-version byte, FNV-1a payload checksum) over
// length-prefixed section frames, one per (kind, device, calibration)
// unit, each with its own identity header, deduplicated string table,
// varint records and per-frame checksum. Sections are independently
// decodable — persist.WriteSections and persist.SectionReader, plus
// the planner/pool StateSections/SaveStateFor/LoadSections entry
// points, expose the snapshot section-by-section so a replica can ship
// or request exactly the device shard it owns. Restore decodes
// sections concurrently and fans cut replay across cores with
// position-indexed slots (insertions stay serial in snapshot order),
// so parallelism changes wall-clock only: save, load, save reproduces
// the file byte for byte. cmd/netserve wires it to the process
// lifecycle: -state-file restores on boot (logging the restore
// duration) and saves after the SIGTERM drain, and POST /v1/state/save
// snapshots on demand. Identity is matched before anything is trusted:
// a snapshot from another schema version (including the retired JSON
// generation), seed, measurement protocol or device calibration is a
// structured rejection and the caches start cold. Because every cached
// value is a pure function of (seed, protocol, calibration,
// structure), a restored entry is byte-identical to a recomputed one —
// restore changes only where the warm path's cost was paid (pinned by
// the serve package's restore-vs-recompute tests). -prewarm
// additionally plans the calibrated zoo across the fleet in the
// background at startup, so steady-state traffic never sees a cold
// miss for a known architecture.
//
// The gateway's admission machinery is one bounded lane — queue plus
// workers — per registered device, with the configured QueueDepth and
// Workers totals divided evenly across lanes (minimum 1 each, the pool
// cache-cap division rule). Lane assignment is the resolved-device
// routing decision, so lanes shift which worker runs an execution and
// when, never what it returns, and one target's cold plan cannot
// head-of-line-block another target's warm traffic.
//
// # Fault tolerance & degradation
//
// Faults are contained at the lane-worker boundary and degradation
// moves or refuses executions, never changes their bytes. A panic
// inside a planner pass becomes a structured 500 for the poisoned
// request while its batchmates are retried solo (receiving exactly the
// bytes the batch would have produced) and the worker survives;
// request identities that panic repeatedly are quarantined in a
// bounded LRU and refused up front. A client that disconnects while
// queued has its work cancelled before the planner runs. An optional
// execution watchdog (GatewayConfig.ExecTimeout) abandons stuck passes
// with a 504 — abandoned results are never delivered or cached.
// Devices that fault repeatedly are taken out of rotation: "auto"
// routes around them, explicit targeting gets 503 with Retry-After
// (every 429/503 rejection carries one), and a background probe
// restores the device when a probe plan succeeds. GET /readyz is the
// readiness probe (503 until MarkReady after boot restore, and again
// while draining), distinct from /healthz liveness.
//
// Crash safety: GatewayConfig.AutosaveInterval (netserve -autosave)
// snapshots the warm state on a jittered cadence via an atomic
// tmp+rename that also rotates one previous-good ".bak" generation;
// LoadStateFile falls back to .bak when the primary is missing or
// torn, so a kill -9 costs at most one interval of warmth. The whole
// surface is exercised deterministically by internal/faultinject —
// seed/key-matched fault points compiled into the hot paths as no-ops
// unless a test arms them — under the race detector in CI.
//
// # Overload control & degraded serving
//
// A closed-loop controller (GatewayConfig.OverloadInterval, netserve
// -overload-interval) folds per-lane backlog, warm-p99 drift of
// observed execution latency and — when GatewayConfig.HeapLimitBytes
// (-heap-limit) arms the memory signals — heap occupancy and GC-pause
// pressure into one load level — 0 normal, 1 brownout, 2 emergency —
// exported
// as netcut_gateway_load_level. Each level sheds optional work first:
// brownout halves the batch window, pauses prewarming and samples the
// trace ring 1-in-4; emergency drops the window, samples 1-in-16 and
// admits only byte-cache hits and coalesce joins, shedding every cold
// miss pre-execution with a level-scaled, backlog-honest Retry-After
// (ceil(backlog/workers) execution waves of p99+window each). The
// level is a pure function of the current signals, so it returns to
// normal within one interval of the load going away (the drift EWMA,
// the one signal with memory, halves each tick while its lane is
// idle). Each lane's execution parallelism adapts by AIMD between 1
// and its configured worker count: +1 per pass while latency tracks
// the device's warm p99, halved on containment events.
//
// Requests may opt into degraded serving with "allow_degraded": true:
// instead of a budget_too_small or device_unhealthy rejection, the
// request is routed deterministically to the fastest healthy device
// and served with "degraded": true and a degraded_reason spliced into
// the body at write time — byte-identical to the explicit spelling of
// the fallback target modulo the trace ID and those markers
// (StripTraceID / StripDegraded recover the canonical bytes). With no
// healthy device the 503 stands: degradation never conjures capacity.
//
// # Observability
//
// internal/telemetry is a dependency-free metrics registry (counters,
// gauges, histograms) threaded through every cache layer — device
// kernel plans, profiler measurements and tables, the sharded TRN cut
// cache — plus the planner's execution counters and cold/warm latency
// split, the gateway's queue/shed/coalesce counters (queue depth and
// queue-full sheds are per-lane, labeled by device) and Go runtime
// gauges (goroutines, heap bytes, GC pause p99, uptime). The gateway
// serves it at /metrics (Prometheus text format, explicit
// Content-Type) and /debug/stats (JSON); README.md carries the
// complete metric-family catalogue, which the gateway smoke script
// lints against a live scrape.
//
// Request tracing (internal/trace, equally dependency-free) is always
// on: each request gets a deterministic 16-hex trace ID — returned in
// the X-Netcut-Trace response header and the trace_id body field —
// and a record of timestamped stage spans covering decode, every
// admission gate with its verdict (drain, quarantine, route, health,
// bytecache, coalesce, shed, degraded on opt-in fallbacks), enqueue,
// queue wait and planner
// execution as separate spans, encode and delivery. Completed traces
// land in a bounded lock-sharded ring served at GET /debug/trace
// (filterable by id, device, status, min_ms, limit;
// GatewayConfig.TraceRingCap / netserve -trace-ring bounds it);
// in-flight requests are visible at GET /debug/requests, oldest
// first, so stuck work surfaces at the top. Requests slower than
// GatewayConfig.SlowTraceMs (netserve -slow-trace) are additionally
// logged as structured log/slog lines carrying the full stage
// breakdown, and per-stage latency is exported as the
// netcut_gateway_stage_ms{stage,device} histogram family. Tracing
// never changes a response byte apart from the injected trace_id
// field — the determinism contract holds modulo that one field, and
// the GOMAXPROCS guard pins exactly that. GatewayConfig.Pprof
// (netserve -pprof) mounts net/http/pprof under /debug/pprof/, off by
// default.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package netcut
