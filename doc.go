// Package netcut reproduces "NetCut: Real-Time DNN Inference Using
// Layer Removal" (Zandigohar, Erdoğmuş, Schirner — DATE 2021) as a Go
// library.
//
// NetCut constructs TRimmed Networks (TRNs) by removing problem-specific
// top layers from pretrained networks used in transfer learning, and
// explores them deadline-first: a latency estimator (a profiler-based
// per-layer table, Eq. (1), or an analytical epsilon-SVR over
// device-agnostic features) proposes only the TRNs that meet an
// application deadline, so just a handful of networks are ever
// retrained.
//
// The root package is a facade over the internal substrates:
//
//   - internal/graph, internal/zoo: layer-graph IR and the seven paper
//     architectures (MobileNetV1/V2, ResNet-50, InceptionV3,
//     DenseNet-121)
//   - internal/trim: blockwise and per-layer TRN construction
//   - internal/device, internal/profiler: a calibrated embedded-GPU
//     simulator standing in for the paper's Jetson Xavier, and the
//     200-warm-up/800-run measurement protocol
//   - internal/svr, internal/estimate: epsilon-SVR (SMO with exact line
//     search), grid search, cross-validation, Eq. (1), and the linear
//     baseline
//   - internal/transfer: the retraining simulator calibrated to the
//     paper's accuracy-vs-removal curves and 183-hour sweep cost
//   - internal/core: Algorithm 1 and the blockwise-sweep baseline
//   - internal/tensor, internal/nn, internal/hands, internal/quant: a
//     real, from-scratch trainable CNN stack for the miniature
//     end-to-end pipeline
//   - internal/emg, internal/fusion, internal/robot: the prosthetic-
//     hand application context that sets the 0.9 ms deadline
//   - internal/exp: the harness regenerating every figure and table
//
// Quick start:
//
//	sel, err := netcut.Select(netcut.Options{DeadlineMs: 0.9})
//	if err != nil { ... }
//	fmt.Println(sel.Network, sel.Accuracy)
//
// # Performance architecture
//
// The measurement pipeline is built for throughput. Loop-invariant work
// is memoized at every layer: the device caches each graph's fused
// kernel plan, steady-state kernel times and MAC-share attribution
// (keyed by structural fingerprint, so independently re-cut copies of
// the same TRN share one plan); the profiler memoizes whole
// measurements and per-layer tables per plan key; and internal/trim
// memoizes built TRNs, so Algorithm 1's inner loop costs one subgraph
// build per distinct cut. The experiment Lab guards each shared
// artefact (candidates, tables, the 148-sample set, the sweep, the
// trained estimators) with a singleflight cell and fans its measurement
// work — per network, per TRN, per SVR grid point x fold, per figure —
// out over a bounded worker pool (internal/par).
//
// Determinism contract: parallelism changes wall-clock time only, never
// results. Every task derives its randomness from the configured seed
// plus the task's own identity (the profiler XORs the seed with a hash
// of the network name; the retraining simulator hashes seed, network
// and cut), and fan-outs write into position-indexed slots, so figure
// renders and Select output are byte-identical for a fixed seed across
// repeated runs and any GOMAXPROCS.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package netcut
